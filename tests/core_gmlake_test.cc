/**
 * @file
 * GMLake allocator tests: the stitching mechanism, the allocation
 * strategy states of Fig 9, deallocation-as-update, StitchFree LRU,
 * the small-allocation path and the OOM fallback.
 */

#include <gtest/gtest.h>

#include "core/gmlake_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using core::GMLakeAllocator;
using core::GMLakeConfig;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

GMLakeConfig
tightConfig()
{
    GMLakeConfig cfg;
    cfg.nearMatchTolerance = 0.0; // exact behaviour for unit tests
    cfg.fragLimit = 2_MiB;
    return cfg;
}

} // namespace

TEST(GMLake, FirstAllocationCreatesPBlock)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(lake.strategy().s4Insufficient, 1u);
    EXPECT_EQ(lake.pBlockCount(), 1u);
    EXPECT_EQ(lake.physicalBytes(), 10_MiB);
    EXPECT_EQ(dev.phys().inUse(), 10_MiB);
    lake.checkConsistency();
}

TEST(GMLake, RoundsToChunkSize)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(5_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(lake.physicalBytes(), 6_MiB);
    EXPECT_EQ(lake.stats().activeBytes(), 6_MiB);
    lake.checkConsistency();
}

TEST(GMLake, DeallocationKeepsPhysicalMemory)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    // Update only flips the state; nothing returns to the device.
    EXPECT_EQ(lake.physicalBytes(), 10_MiB);
    EXPECT_EQ(lake.stats().activeBytes(), 0u);
    EXPECT_EQ(lake.inactivePBlockCount(), 1u);
    lake.checkConsistency();
}

TEST(GMLake, ExactMatchReusesBlock)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    const VirtAddr addr = a->addr;
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    const auto b = lake.allocate(10_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, addr);
    EXPECT_EQ(lake.strategy().s1ExactMatch, 1u);
    EXPECT_EQ(lake.physicalBytes(), 10_MiB);
    lake.checkConsistency();
}

TEST(GMLake, StitchingFusesNonContiguousBlocks)
{
    // The Figure 1 scenario: two freed blocks serve one bigger
    // tensor without growing physical memory.
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(12_MiB);
    const auto b = lake.allocate(4_MiB);   // keeps a and c apart
    const auto c = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(c->id).ok());

    const Bytes before = lake.physicalBytes();
    const auto big = lake.allocate(20_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.physicalBytes(), before); // no new physical memory
    EXPECT_EQ(lake.strategy().s3MultiBlocks, 1u);
    EXPECT_GE(lake.strategy().stitches, 1u);
    EXPECT_EQ(lake.sBlockCount(), 1u);
    lake.checkConsistency();
}

TEST(GMLake, StitchedBlockIsReusedOnRepeat)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(12_MiB);
    const auto b = lake.allocate(4_MiB);
    const auto c = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(c->id).ok());

    const auto big1 = lake.allocate(20_MiB);
    ASSERT_TRUE(big1.ok());
    const VirtAddr addr = big1->addr;
    ASSERT_TRUE(lake.deallocate(big1->id).ok());

    // Second time around: exact sBlock match, no new stitch.
    const std::uint64_t stitchesBefore = lake.strategy().stitches;
    const auto big2 = lake.allocate(20_MiB);
    ASSERT_TRUE(big2.ok());
    EXPECT_EQ(big2->addr, addr);
    EXPECT_EQ(lake.strategy().stitches, stitchesBefore);
    lake.checkConsistency();
}

TEST(GMLake, SplitServesSmallerRequest)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(20_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());

    const auto b = lake.allocate(8_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(lake.strategy().s2SingleBlock, 1u);
    EXPECT_GE(lake.strategy().splits, 1u);
    EXPECT_EQ(lake.physicalBytes(), 20_MiB); // no growth
    // The remainder is available for another request.
    const auto c = lake.allocate(12_MiB);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(lake.physicalBytes(), 20_MiB);
    lake.checkConsistency();
}

TEST(GMLake, RestitchAfterSplitPreservesOriginalSize)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(20_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());

    const auto b = lake.allocate(8_MiB);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(lake.deallocate(b->id).ok());

    // The original 20 MiB pattern still finds an exact (stitched)
    // match even though the pBlock was split.
    const Bytes before = lake.physicalBytes();
    const auto again = lake.allocate(20_MiB);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(lake.physicalBytes(), before);
    EXPECT_EQ(lake.strategy().s1ExactMatch, 1u);
    lake.checkConsistency();
}

TEST(GMLake, SBlockIneligibleWhileMemberActive)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(12_MiB);
    const auto spacer = lake.allocate(4_MiB);
    const auto c = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok() && spacer.ok() && c.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(c->id).ok());

    const auto big = lake.allocate(20_MiB); // stitches a+c
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(lake.deallocate(big->id).ok());

    // Take one member directly: the cached 20 MiB sBlock must not
    // serve a new request while its member is in use.
    const auto member = lake.allocate(12_MiB);
    ASSERT_TRUE(member.ok());
    const Bytes before = lake.physicalBytes();
    const auto big2 = lake.allocate(20_MiB);
    ASSERT_TRUE(big2.ok());
    EXPECT_GT(lake.physicalBytes(), before); // had to grow
    lake.checkConsistency();
}

TEST(GMLake, NearMatchHandsOutWholeBlock)
{
    GMLakeConfig cfg;
    cfg.fragLimit = 2_MiB;
    cfg.nearMatchTolerance = 0.25;
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, cfg);
    const auto a = lake.allocate(20_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());

    // 18 MiB is within 25% of 20 MiB: whole-block hand-out, no split.
    const auto b = lake.allocate(18_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(lake.strategy().s1ExactMatch, 1u);
    EXPECT_EQ(lake.strategy().splits, 0u);
    EXPECT_EQ(lake.stats().activeBytes(), 20_MiB); // whole block
    lake.checkConsistency();
}

TEST(GMLake, SmallRequestsUseSplittingPath)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(64_KiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(lake.strategy().smallPath, 1u);
    EXPECT_EQ(lake.pBlockCount(), 0u); // no VMS involvement
    // Reserved memory reflects the small pool's segment.
    EXPECT_EQ(lake.stats().reservedBytes(), 2_MiB);
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    EXPECT_EQ(lake.stats().activeBytes(), 0u);
    lake.checkConsistency();
}

TEST(GMLake, StitchFreeEvictsLruSBlocks)
{
    GMLakeConfig cfg = tightConfig();
    cfg.maxCachedSBlocks = 2;
    vmm::Device dev(smallDevice(512_MiB));
    GMLakeAllocator lake(dev, cfg);

    // Manufacture several distinct stitched blocks.
    for (int round = 0; round < 4; ++round) {
        const Bytes sz = (10 + 2 * round) * 1_MiB;
        const auto a = lake.allocate(sz);
        const auto sp = lake.allocate(2_MiB);
        const auto b = lake.allocate(sz + 2_MiB);
        ASSERT_TRUE(a.ok() && sp.ok() && b.ok());
        ASSERT_TRUE(lake.deallocate(a->id).ok());
        ASSERT_TRUE(lake.deallocate(b->id).ok());
        const auto big = lake.allocate(2 * sz + 2_MiB);
        ASSERT_TRUE(big.ok());
        ASSERT_TRUE(lake.deallocate(big->id).ok());
        ASSERT_TRUE(lake.deallocate(sp->id).ok());
    }
    // The cache got trimmed along the way.
    EXPECT_GT(lake.strategy().stitchFrees, 0u);
    lake.checkConsistency();
}

TEST(GMLake, EmptyCacheReturnsPhysicalMemory)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(20_MiB);
    const auto b = lake.allocate(10_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    lake.emptyCache();
    EXPECT_EQ(lake.physicalBytes(), 10_MiB); // only b remains
    EXPECT_EQ(dev.phys().inUse(), 10_MiB);
    EXPECT_EQ(lake.stats().reservedBytes(), 10_MiB);
    lake.checkConsistency();
}

TEST(GMLake, OomFallbackReleasesCacheAndRetries)
{
    vmm::Device dev(smallDevice(64_MiB));
    GMLakeAllocator lake(dev, tightConfig());
    // Fill the device, free everything, then ask for a block that
    // can be served by stitching the cached blocks.
    const auto a = lake.allocate(30_MiB);
    const auto b = lake.allocate(30_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(b->id).ok());
    const auto big = lake.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.physicalBytes(), 60_MiB);
    lake.checkConsistency();
}

TEST(GMLake, HardOomReported)
{
    vmm::Device dev(smallDevice(32_MiB));
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(20_MiB);
    ASSERT_TRUE(a.ok());
    const auto b = lake.allocate(20_MiB);
    EXPECT_EQ(b.code(), Errc::outOfMemory);
    EXPECT_EQ(lake.strategy().s5Oom, 1u);
    lake.checkConsistency();
}

TEST(GMLake, S4StitchesPartialCandidatesWithFreshBlock)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    const auto a = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());

    // 20 MiB needs 12 MiB of new memory stitched with the cached 8.
    const auto big = lake.allocate(20_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.physicalBytes(), 20_MiB);
    EXPECT_EQ(lake.strategy().s4Insufficient, 2u); // first alloc + this
    EXPECT_EQ(lake.sBlockCount(), 1u);
    lake.checkConsistency();
}

TEST(GMLake, StitchingDisabledFallsBackToWholeAllocations)
{
    GMLakeConfig cfg = tightConfig();
    cfg.enableStitching = false;
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, cfg);
    const auto a = lake.allocate(12_MiB);
    const auto sp = lake.allocate(4_MiB);
    const auto c = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok() && sp.ok() && c.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(c->id).ok());
    const auto big = lake.allocate(20_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.strategy().stitches, 0u);
    // Without stitching the allocator had to grow.
    EXPECT_EQ(lake.physicalBytes(), 44_MiB);
    lake.checkConsistency();
}

TEST(GMLake, UnknownIdRejected)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    EXPECT_EQ(lake.deallocate(99).code(), Errc::invalidValue);
}

TEST(GMLake, ZeroByteRejected)
{
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());
    EXPECT_EQ(lake.allocate(0).code(), Errc::invalidValue);
}

TEST(GMLake, ReservedNeverBelowActive)
{
    vmm::Device dev(smallDevice(1_GiB));
    GMLakeAllocator lake(dev, tightConfig());
    std::vector<alloc::AllocId> live;
    std::uint64_t x = 1234;
    auto rnd = [&x]() {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 1500; ++i) {
        if (live.empty() || rnd() % 3 != 0) {
            const Bytes size = 1_MiB + rnd() % (24_MiB);
            const auto a = lake.allocate(size);
            if (!a.ok()) {
                ASSERT_EQ(a.code(), Errc::outOfMemory);
                for (std::size_t k = 0; k < live.size() / 2; ++k)
                    ASSERT_TRUE(lake.deallocate(live[k]).ok());
                live.erase(live.begin(),
                           live.begin() + static_cast<std::ptrdiff_t>(
                                              live.size() / 2));
                continue;
            }
            live.push_back(a->id);
        } else {
            const std::size_t idx = rnd() % live.size();
            ASSERT_TRUE(lake.deallocate(live[idx]).ok());
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
        EXPECT_GE(lake.stats().reservedBytes(),
                  lake.stats().activeBytes());
        if (i % 250 == 0)
            lake.checkConsistency();
    }
    lake.checkConsistency();
}

TEST(GMLakeAllocator, SteadyStateChurnRecyclesBlockNodes)
{
    // The stitch/free hot path must not construct block metadata:
    // after warmup, every pBlock/sBlock node comes from the slab
    // pool freelist (created() stands still, reused() advances).
    vmm::Device dev(smallDevice());
    GMLakeConfig gc = tightConfig();
    gc.restitchOnSplit = false;
    gc.maxCachedSBlocks = 0; // evict before every search: always re-stitch
    GMLakeAllocator lake(dev, gc);

    // Two cached fragments serve one double-size request per cycle.
    const auto a = lake.allocate(16_MiB);
    const auto spacer = lake.allocate(2_MiB);
    const auto b = lake.allocate(16_MiB);
    ASSERT_TRUE(a.ok() && spacer.ok() && b.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(b->id).ok());

    auto cycle = [&] {
        const auto big = lake.allocate(32_MiB);
        ASSERT_TRUE(big.ok());
        ASSERT_TRUE(lake.deallocate(big->id).ok());
    };
    for (int i = 0; i < 8; ++i)
        cycle(); // warmup: pools reach their high-water mark

    const auto warm = lake.poolCounters();
    const auto stitchesBefore = lake.strategy().stitches;
    for (int i = 0; i < 64; ++i)
        cycle();
    const auto after = lake.poolCounters();

    // The churn really exercised the stitch path...
    EXPECT_GE(lake.strategy().stitches, stitchesBefore + 64);
    // ...yet no new node was ever constructed: all recycled.
    EXPECT_EQ(after.pCreated, warm.pCreated);
    EXPECT_EQ(after.sCreated, warm.sCreated);
    EXPECT_GE(after.sReused, warm.sReused + 64);
    lake.checkConsistency();
}

TEST(GMLakeAllocator, PoolCountersSurviveSplitChurn)
{
    // Split/restitch cycles also recycle: the halves and the
    // re-stitched sBlock reuse released nodes once warm.
    vmm::Device dev(smallDevice());
    GMLakeAllocator lake(dev, tightConfig());

    auto cycle = [&] {
        const auto big = lake.allocate(24_MiB);
        ASSERT_TRUE(big.ok());
        ASSERT_TRUE(lake.deallocate(big->id).ok());
        const auto small = lake.allocate(8_MiB); // splits the 24 MiB
        ASSERT_TRUE(small.ok());
        ASSERT_TRUE(lake.deallocate(small->id).ok());
        lake.emptyCache(); // releases blocks: nodes hit the freelist
    };
    for (int i = 0; i < 4; ++i)
        cycle();
    const auto warm = lake.poolCounters();
    for (int i = 0; i < 16; ++i)
        cycle();
    const auto after = lake.poolCounters();
    EXPECT_EQ(after.pCreated, warm.pCreated);
    EXPECT_EQ(after.sCreated, warm.sCreated);
    EXPECT_GT(after.pReused, warm.pReused);
    lake.checkConsistency();
}
