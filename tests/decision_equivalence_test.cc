/**
 * @file
 * Allocation-decision equivalence: the hot-path data-structure work
 * (incremental indices, range-based BestFit, scratch buffers) must
 * not change a single allocation decision. Every registry scenario's
 * deterministic outputs — run records, scenario metrics, and the
 * GMLake strategy counters on representative workloads — are folded
 * into FNV-1a digests and pinned against values recorded from the
 * pre-refactor allocator.
 *
 * Host-wallclock fields (alloc_wall_*, run_wall_*) are excluded:
 * they measure the simulator, not the simulation, and differ on
 * every run by design.
 *
 * Re-record after an *intentional* decision change with:
 *
 *   GMLAKE_PRINT_DIGESTS=1 ./decision_equivalence_test
 *
 * and paste the printed table over kExpectedDigests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

#include "core/gmlake_allocator.hh"
#include "obs/recorder.hh"
#include "sim/experiment.hh"
#include "support/units.hh"
#include "vmm/device.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::sim;

namespace
{

/** FNV-1a 64-bit, fed field by field. */
class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            mHash ^= (v >> (8 * i)) & 0xff;
            mHash *= 0x100000001b3ULL;
        }
    }

    /**
     * Quantized to 2^-20: coarse enough that FMA-contraction and
     * libm last-ulp differences across compilers cannot flip the
     * digest, fine enough that any real decision change does.
     */
    void
    add(double v)
    {
        if (!std::isfinite(v)) {
            add(std::uint64_t{0x7ff0dead});
            return;
        }
        add(static_cast<std::uint64_t>(
            std::llround(v * 1048576.0)));
    }

    void
    add(std::string_view s)
    {
        for (const char c : s) {
            mHash ^= static_cast<unsigned char>(c);
            mHash *= 0x100000001b3ULL;
        }
        add(static_cast<std::uint64_t>(s.size()));
    }

    std::uint64_t value() const { return mHash; }

  private:
    std::uint64_t mHash = 0xcbf29ce484222325ULL;
};

/**
 * Run one registry scenario at smoke scale and digest everything
 * deterministic it recorded.
 */
std::uint64_t
digestScenario(const Experiment &experiment,
               obs::Recorder *recorder = nullptr)
{
    ExperimentOptions options;
    options.iterations = 1;
    std::ostringstream sink;
    ExperimentContext ctx(options, sink);
    if (recorder != nullptr) {
        ctx.setRecorder(recorder);
        recorder->activate();
    }
    experiment.run(ctx);
    if (recorder != nullptr)
        recorder->deactivate();

    Digest d;
    for (const RunRecord &r : ctx.records()) {
        d.add(r.label);
        d.add(r.allocator);
        d.add(static_cast<std::uint64_t>(r.result.oom));
        d.add(static_cast<std::uint64_t>(r.result.oomAt));
        d.add(static_cast<std::uint64_t>(r.result.iterationsDone));
        d.add(static_cast<std::uint64_t>(r.result.simTime));
        d.add(static_cast<std::uint64_t>(r.result.peakActive));
        d.add(static_cast<std::uint64_t>(r.result.peakReserved));
        d.add(r.result.utilization);
        d.add(r.result.fragmentation);
        d.add(r.result.samplesPerSec);
        d.add(r.result.allocCount);
        d.add(r.result.freeCount);
        d.add(static_cast<std::uint64_t>(r.result.deviceApiTime));
        d.add(static_cast<std::uint64_t>(r.result.series.size()));
    }
    for (const MetricRecord &m : ctx.metrics()) {
        if (m.name.find("wall") != std::string::npos ||
            m.name.find("rss") != std::string::npos)
            continue; // host wallclock/RSS: nondeterministic by design
        d.add(m.label);
        d.add(m.name);
        d.add(m.value);
    }
    return d.value();
}

struct ExpectedDigest
{
    const char *scenario;
    std::uint64_t digest;
};

/**
 * Recorded in the hot-path PR immediately *before* its allocator /
 * engine refactor (scenarios and measurement layer in place, search
 * code untouched): these pins attested the refactor bit-identical
 * when it landed, and guard every later change against silent
 * decision drift. See @file for how to re-record.
 */
constexpr ExpectedDigest kExpectedDigests[] = {
    {"headline", 0xaaf67d1bb2079e8bULL},
    {"fig3", 0xc706415a6b0ecf87ULL},
    {"fig4", 0xbfc5f9c86b931930ULL},
    {"fig5", 0x8929ae40d3929b5aULL},
    {"fig6", 0x335587e40fc50de5ULL},
    {"fig10", 0x2e4f4c46796c4634ULL},
    {"fig11", 0xb85e423f6b745f4dULL},
    {"fig12", 0x1c3bf5f88c37a3e8ULL},
    {"fig13", 0x037d7e829df77858ULL},
    {"fig14", 0x66db75d302f72a7aULL},
    {"table1", 0x66412c29128027f2ULL},
    {"ablation", 0xfba59ff44276e37dULL},
    {"native-vs-caching", 0x0ae97420762d6e6bULL},
    {"pytorch-knobs", 0x267a3c32a15e2a25ULL},
    {"serving", 0x343804aff38128ceULL},
    {"stitch-vs-move", 0x29f449cf4116ba01ULL},
    {"vmm-designs", 0x3d434fa2d02cdcfdULL},
    {"colocate-train-serve", 0xd0b0008c3bae27bfULL},
    {"colocate-two-serving", 0xefd1c987445677c5ULL},
    {"colocate-oversub", 0xb3e6863919e69907ULL},
    // Offload-tier scenarios: eviction/fault/stall decisions are
    // fully deterministic, so the whole spill schedule is pinned.
    {"oversub-offload", 0x3f157f3171c8e5d7ULL},
    {"serve-burst-offload", 0x24497ba2c641f515ULL},
    {"stress-allocator", 0x9b2aa751be30516fULL},
    {"frag-churn", 0xde35e226c2b9b263ULL},
    {"cluster-ranks", 0x80a873f6d163fcd6ULL},
    // Streaming-generator scenario (EventSource PR): the KV-serve
    // block churn is seed-deterministic, so the whole serving day
    // is pinned like any materialized trace.
    {"serve-day", 0xb62855605fa14fe5ULL},
    // Checkpoint/restore sweep: warmup prefix + per-point tail
    // replays are deterministic end to end (sim/sweep.hh), so the
    // whole warm-started grid pins like a straight run.
    {"sweep-smoke", 0xc134c53e615c6e37ULL},
};

bool
printDigests()
{
    const char *env = std::getenv("GMLAKE_PRINT_DIGESTS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

} // namespace

TEST(DecisionEquivalence, EveryScenarioIsPinned)
{
    // A new scenario must be pinned here deliberately, so hot-path
    // changes cannot land unverified behind it.
    for (const Experiment &e : allExperiments()) {
        bool pinned = false;
        for (const auto &[scenario, digest] : kExpectedDigests) {
            (void)digest;
            pinned |= e.name == scenario;
        }
        EXPECT_TRUE(pinned)
            << "scenario '" << e.name
            << "' has no recorded decision digest; run with "
               "GMLAKE_PRINT_DIGESTS=1 and add it";
    }
}

TEST(DecisionEquivalence, ScenarioDigestsMatchRecorded)
{
    for (const auto &[scenario, expected] : kExpectedDigests) {
        const Experiment *e = findExperiment(scenario);
        ASSERT_NE(e, nullptr) << scenario;
        const std::uint64_t got = digestScenario(*e);
        if (printDigests()) {
            std::printf("    {\"%s\", 0x%016llxULL},\n", scenario,
                        static_cast<unsigned long long>(got));
            continue;
        }
        EXPECT_EQ(got, expected)
            << "allocation decisions changed on scenario '"
            << scenario
            << "'. If intentional, re-record with "
               "GMLAKE_PRINT_DIGESTS=1 (see file header).";
    }
}

TEST(DecisionEquivalence, RecorderIsDecisionNeutral)
{
    // The observability layer's core contract: a live recorder
    // changes *nothing* the simulation decides — same digests as the
    // untraced pins above. Timestamps are read from the simulated
    // clock, never advanced by recording, so tracing on/off must be
    // bit-identical. A representative subset keeps the suite's
    // runtime in check: the headline path, the heaviest figure, the
    // offload tier, the deep-pool stress run, and the sweep harness
    // (which exercises checkpoint/restore under tracing).
    if (printDigests())
        GTEST_SKIP() << "re-recording digests";
    const char *subset[] = {"headline", "fig10", "oversub-offload",
                            "stress-allocator", "sweep-smoke"};
    for (const char *scenario : subset) {
        const Experiment *e = findExperiment(scenario);
        ASSERT_NE(e, nullptr) << scenario;
        const ExpectedDigest *pin = nullptr;
        for (const ExpectedDigest &candidate : kExpectedDigests) {
            if (std::string_view(candidate.scenario) == scenario)
                pin = &candidate;
        }
        ASSERT_NE(pin, nullptr) << scenario;

        obs::Recorder recorder;
        const std::uint64_t traced = digestScenario(*e, &recorder);
        EXPECT_EQ(traced, pin->digest)
            << "recording changed allocation decisions on '"
            << scenario << "'";
        // The neutrality claim is only meaningful if the recorder
        // actually captured the run.
        EXPECT_GT(recorder.snapshot().events.size(), 0u)
            << scenario;
    }
}

// ------------------------------------------------ strategy counters

namespace
{

struct CounterPin
{
    const char *model;
    const char *strategies;
    int gpus;
    int batch;
    int iterations;
    core::StrategyCounters expected;
};

core::StrategyCounters
runCounters(const CounterPin &pin)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel(pin.model);
    cfg.strategies = workload::Strategies::parse(pin.strategies);
    cfg.gpus = pin.gpus;
    cfg.batchSize = pin.batch;
    cfg.iterations = pin.iterations;

    vmm::Device device;
    core::GMLakeAllocator lake(device);
    const auto trace = workload::generateTrainingTrace(cfg);
    (void)runTrace(lake, device, trace, &cfg);
    lake.checkConsistency();
    return lake.strategy();
}

} // namespace

TEST(DecisionEquivalence, StrategyCountersMatchRecorded)
{
    // Exact per-state counters of Fig 9 on representative workloads,
    // recorded from the pre-refactor allocator. Any drift means the
    // search visits different candidates.
    const CounterPin pins[] = {
        {"OPT-13B", "LR", 4, 16, 4,
         {1816, 37, 138, 246, 0, 270, 74, 0, 1288}},
        {"GPT-NeoX-20B", "LRO", 4, 24, 3,
         {1721, 29, 136, 221, 0, 263, 72, 0, 1065}},
        {"OPT-1.3B", "RO", 4, 64, 4,
         {1337, 33, 115, 104, 0, 217, 71, 0, 768}},
    };
    for (const CounterPin &pin : pins) {
        const auto got = runCounters(pin);
        if (printDigests()) {
            std::printf(
                "        {\"%s\", \"%s\", %d, %d, %d,\n"
                "         {%llu, %llu, %llu, %llu, %llu, %llu, "
                "%llu, %llu, %llu}},\n",
                pin.model, pin.strategies, pin.gpus, pin.batch,
                pin.iterations,
                static_cast<unsigned long long>(got.s1ExactMatch),
                static_cast<unsigned long long>(got.s2SingleBlock),
                static_cast<unsigned long long>(got.s3MultiBlocks),
                static_cast<unsigned long long>(got.s4Insufficient),
                static_cast<unsigned long long>(got.s5Oom),
                static_cast<unsigned long long>(got.stitches),
                static_cast<unsigned long long>(got.splits),
                static_cast<unsigned long long>(got.stitchFrees),
                static_cast<unsigned long long>(got.smallPath));
            continue;
        }
        const std::string what = std::string(pin.model) + "/" +
                                 pin.strategies + "/b" +
                                 std::to_string(pin.batch);
        EXPECT_EQ(got.s1ExactMatch, pin.expected.s1ExactMatch) << what;
        EXPECT_EQ(got.s2SingleBlock, pin.expected.s2SingleBlock)
            << what;
        EXPECT_EQ(got.s3MultiBlocks, pin.expected.s3MultiBlocks)
            << what;
        EXPECT_EQ(got.s4Insufficient, pin.expected.s4Insufficient)
            << what;
        EXPECT_EQ(got.s5Oom, pin.expected.s5Oom) << what;
        EXPECT_EQ(got.stitches, pin.expected.stitches) << what;
        EXPECT_EQ(got.splits, pin.expected.splits) << what;
        EXPECT_EQ(got.stitchFrees, pin.expected.stitchFrees) << what;
        EXPECT_EQ(got.smallPath, pin.expected.smallPath) << what;
    }
}
