/**
 * @file
 * Tests for the PyTorch allocator tuning knobs: max_split_size,
 * roundup_power2_divisions and garbage_collection_threshold.
 */

#include <gtest/gtest.h>

#include "alloc/caching_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using alloc::CachingAllocator;
using alloc::CachingConfig;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(MaxSplitSize, OversizeBlocksAreNeverSplit)
{
    CachingConfig cfg;
    cfg.maxSplitSize = 32_MiB;
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev, cfg);

    const auto big = alloc.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());

    // A 50 MiB request leaves only 10 MiB <= largeBuffer: the whole
    // 60 MiB block is handed out unsplit.
    const auto a = alloc.allocate(50_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->addr, big->addr);
    EXPECT_EQ(alloc.stats().activeBytes(), 60_MiB); // whole block
    EXPECT_EQ(alloc.cachedBytes(), 0u);
    alloc.checkConsistency();
}

TEST(MaxSplitSize, OversizeBlocksRejectSmallRequests)
{
    CachingConfig cfg;
    cfg.maxSplitSize = 32_MiB;
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev, cfg);

    const auto big = alloc.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());

    // 12 MiB would waste 48 MiB of an unsplittable block: the
    // allocator grows a fresh segment instead of nibbling it.
    const auto small = alloc.allocate(12_MiB);
    ASSERT_TRUE(small.ok());
    EXPECT_NE(small->addr, big->addr);
    EXPECT_EQ(dev.counters().mallocNative, 2u);
    alloc.checkConsistency();
}

TEST(MaxSplitSize, BelowLimitSplitsNormally)
{
    CachingConfig cfg;
    cfg.maxSplitSize = 128_MiB;
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev, cfg);
    const auto big = alloc.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());
    const auto small = alloc.allocate(12_MiB);
    ASSERT_TRUE(small.ok());
    EXPECT_EQ(small->addr, big->addr); // split as usual
    EXPECT_EQ(dev.counters().mallocNative, 1u);
    alloc.checkConsistency();
}

TEST(RoundupPower2, CollapsesNearMissSizes)
{
    CachingConfig cfg;
    cfg.roundupPower2Divisions = 4;
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev, cfg);

    // 33 MiB rounds to the next 1/4-of-64MiB step: 48 MiB.
    const auto a = alloc.allocate(33_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(alloc.stats().activeBytes(), 48_MiB);
    ASSERT_TRUE(alloc.deallocate(a->id).ok());

    // A 35 MiB request lands in the same size class and reuses it.
    const auto b = alloc.allocate(35_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, a->addr);
    alloc.checkConsistency();
}

TEST(RoundupPower2, DisabledKeepsFineRounding)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev); // divisions = 0
    const auto a = alloc.allocate(33_MiB);
    ASSERT_TRUE(a.ok());
    // The 34 MiB segment (33 rounded to the 2 MiB segment unit) is
    // handed out whole because the 1 MiB leftover is below the
    // large-pool split threshold — but no power-of-two inflation.
    EXPECT_EQ(alloc.stats().activeBytes(), 34_MiB);
}

TEST(GcThreshold, TrimsCacheBeforeGrowing)
{
    CachingConfig cfg;
    cfg.gcThreshold = 0.25; // 64 MiB of the 256 MiB device
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev, cfg);

    // Cache 80 MiB of freed segments (over the threshold).
    std::vector<alloc::AllocId> ids;
    for (int i = 0; i < 4; ++i) {
        const auto a = alloc.allocate(20_MiB);
        ASSERT_TRUE(a.ok());
        ids.push_back(a->id);
    }
    for (const auto id : ids)
        ASSERT_TRUE(alloc.deallocate(id).ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 80_MiB);

    // The next growth trims the cache first.
    const auto b = alloc.allocate(40_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 40_MiB);
    alloc.checkConsistency();
}

TEST(GcThreshold, DisabledKeepsCache)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev); // threshold 0
    const auto a = alloc.allocate(20_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    const auto b = alloc.allocate(40_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 60_MiB);
}
