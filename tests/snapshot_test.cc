/**
 * @file
 * Tests for the memory-snapshot introspection API and the physical
 * address-space renderer.
 */

#include <gtest/gtest.h>

#include "alloc/caching_allocator.hh"
#include "alloc/native_allocator.hh"
#include "alloc/snapshot.hh"
#include "core/gmlake_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 128_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(Snapshot, CachingInventoriesSegmentsAndBlocks)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator allocator(dev);
    const auto a = allocator.allocate(30_MiB);
    const auto b = allocator.allocate(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(allocator.deallocate(b->id).ok());

    const auto snap = allocator.snapshot();
    EXPECT_EQ(snap.allocator, "caching");
    EXPECT_EQ(snap.activeBytes, allocator.stats().activeBytes());
    EXPECT_EQ(snap.reservedBytes, allocator.stats().reservedBytes());
    EXPECT_EQ(snap.regionCount("segment"), 2u);
    // The freed 4 MiB block plus the 20 MiB segment's remainder.
    EXPECT_EQ(snap.freeBlockBytes(),
              allocator.stats().reservedBytes() -
                  allocator.stats().activeBytes());
    EXPECT_GE(snap.freeBlockCount(), 1u);
    EXPECT_FALSE(snap.summary().empty());

    // Blocks tile each region exactly.
    for (const auto &region : snap.regions) {
        Bytes total = 0;
        VirtAddr cursor = region.base;
        for (const auto &block : region.blocks) {
            EXPECT_EQ(block.addr, cursor);
            cursor += block.size;
            total += block.size;
        }
        EXPECT_EQ(total, region.size);
    }
}

TEST(Snapshot, GmlakeListsPBlocksAndSBlocks)
{
    vmm::Device dev(smallDevice());
    core::GMLakeConfig gc;
    gc.nearMatchTolerance = 0.0;
    core::GMLakeAllocator lake(dev, gc);
    const auto a = lake.allocate(12_MiB);
    const auto sp = lake.allocate(4_MiB);
    const auto c = lake.allocate(8_MiB);
    ASSERT_TRUE(a.ok() && sp.ok() && c.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(c->id).ok());
    const auto big = lake.allocate(20_MiB);
    ASSERT_TRUE(big.ok());

    const auto snap = lake.snapshot();
    EXPECT_EQ(snap.allocator, "gmlake");
    EXPECT_EQ(snap.regionCount("pblock"), lake.pBlockCount());
    EXPECT_EQ(snap.regionCount("sblock"), lake.sBlockCount());
    EXPECT_GE(snap.regionCount("sblock"), 1u);

    // sBlock regions list their members, whose sizes sum up.
    for (const auto &region : snap.regions) {
        if (region.kind != "sblock")
            continue;
        Bytes total = 0;
        for (const auto &m : region.blocks)
            total += m.size;
        EXPECT_EQ(total, region.size);
    }
    EXPECT_FALSE(snap.summary().empty());
}

TEST(Snapshot, NativeUsesTheDefaultSummary)
{
    vmm::Device dev(smallDevice());
    alloc::NativeAllocator allocator(dev);
    const auto a = allocator.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    const auto snap = allocator.snapshot();
    EXPECT_EQ(snap.allocator, "native");
    EXPECT_EQ(snap.activeBytes, 10_MiB);
    EXPECT_TRUE(snap.regions.empty());
}

TEST(PhysicalMap, EmptyDeviceIsAllFree)
{
    vmm::Device dev(smallDevice());
    const auto map = alloc::renderPhysicalMap(dev.phys(), 16);
    EXPECT_EQ(map, "[................]");
}

TEST(PhysicalMap, FullDeviceIsAllUsed)
{
    vmm::Device dev(smallDevice(32_MiB));
    ASSERT_TRUE(dev.mallocNative(32_MiB).ok());
    const auto map = alloc::renderPhysicalMap(dev.phys(), 8);
    EXPECT_EQ(map, "[########]");
}

TEST(PhysicalMap, HoleShowsInTheMiddle)
{
    vmm::Device dev(smallDevice(32_MiB));
    const auto a = dev.mallocNative(8_MiB);
    const auto b = dev.mallocNative(8_MiB);
    const auto c = dev.mallocNative(16_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(dev.freeNative(*b).ok());
    // 8 used, 8 free, 16 used -> quarters: # . # #
    const auto map = alloc::renderPhysicalMap(dev.phys(), 4);
    EXPECT_EQ(map, "[#.##]");
}

TEST(PhysicalMap, PartialCellsMarked)
{
    vmm::Device dev(smallDevice(32_MiB));
    ASSERT_TRUE(dev.mallocNative(4_MiB).ok());
    // One cell covering 32 MiB, only 4 MiB used -> '+'.
    const auto map = alloc::renderPhysicalMap(dev.phys(), 1);
    EXPECT_EQ(map, "[+]");
}
