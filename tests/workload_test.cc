/**
 * @file
 * Workload tests: model zoo, strategies, trace validation and
 * (de)serialization, and the statistical shape of generated traces
 * (alloc counts and sizes, Observation 1, Fig 5).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/units.hh"
#include "workload/model_zoo.hh"
#include "workload/trace.hh"
#include "workload/tracegen.hh"
#include "workload/train_config.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::workload;

// ------------------------------------------------------------ model zoo

TEST(ModelZoo, ContainsTheTable2Models)
{
    for (const char *name :
         {"OPT-1.3B", "GPT-2", "GLM-10B", "OPT-13B", "Vicuna-13B",
          "GPT-NeoX-20B"}) {
        const auto &m = findModel(name);
        EXPECT_EQ(m.name, name);
        EXPECT_GT(m.params, 1e9);
        EXPECT_GT(m.layers, 0);
        EXPECT_GT(m.hidden, 0);
    }
    EXPECT_GE(allModels().size(), 6u);
}

TEST(ModelZoo, UnknownModelIsFatal)
{
    EXPECT_THROW(findModel("GPT-5"), std::runtime_error);
}

TEST(ModelZoo, LayerParamsApproximateTotal)
{
    // layers x layerParams + embedding should land within 25% of the
    // advertised parameter count for standard architectures.
    for (const auto &m : allModels()) {
        const double approx =
            m.layers * m.layerParams() + m.embeddingParams();
        EXPECT_GT(approx, 0.6 * m.params) << m.name;
        EXPECT_LT(approx, 1.4 * m.params) << m.name;
    }
}

// ----------------------------------------------------------- strategies

TEST(Strategies, ParseAndLabelRoundTrip)
{
    for (const char *label : {"N", "R", "LR", "RO", "LRO"}) {
        const auto s = Strategies::parse(label);
        EXPECT_EQ(s.label(), label);
    }
    EXPECT_EQ(Strategies::parse("P").label(), "N");
}

TEST(Strategies, BadLabelIsFatal)
{
    EXPECT_THROW(Strategies::parse("XYZ"), std::runtime_error);
}

TEST(TrainConfig, DescribeMentionsKeyFields)
{
    TrainConfig c;
    c.model = findModel("OPT-13B");
    c.gpus = 4;
    c.strategies = Strategies::parse("LR");
    const auto d = c.describe();
    EXPECT_NE(d.find("OPT-13B"), std::string::npos);
    EXPECT_NE(d.find("LR"), std::string::npos);
    EXPECT_NE(d.find("4GPU"), std::string::npos);
}

// ---------------------------------------------------------------- trace

TEST(Trace, BuilderTracksLiveTensors)
{
    TraceBuilder tb;
    const auto a = tb.alloc(1_MiB);
    const auto b = tb.alloc(2_MiB);
    EXPECT_EQ(tb.liveTensors(), 2u);
    EXPECT_EQ(tb.liveBytes(), 3_MiB);
    tb.free(a);
    EXPECT_EQ(tb.liveBytes(), 2_MiB);
    tb.free(b);
    const auto trace = tb.take();
    EXPECT_EQ(trace.stats().allocCount, 2u);
    EXPECT_EQ(trace.stats().totalAllocBytes, 3_MiB);
}

TEST(Trace, DoubleFreePanics)
{
    TraceBuilder tb;
    const auto a = tb.alloc(1_MiB);
    tb.free(a);
    EXPECT_THROW(tb.free(a), std::logic_error);
}

TEST(Trace, FreeAllReleasesEverything)
{
    TraceBuilder tb;
    (void)tb.alloc(1_MiB);
    (void)tb.alloc(2_MiB);
    tb.freeAll();
    EXPECT_EQ(tb.liveTensors(), 0u);
    EXPECT_NO_THROW(tb.take());
}

TEST(Trace, SaveLoadRoundTrip)
{
    TraceBuilder tb;
    const auto a = tb.alloc(1_MiB);
    tb.compute(500);
    tb.iterationMark();
    const auto b = tb.alloc(3_MiB);
    tb.free(a);
    tb.free(b);
    const Trace original = tb.take();

    std::stringstream ss;
    original.save(ss);
    const Trace loaded = Trace::load(ss);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.stats().allocCount, original.stats().allocCount);
    EXPECT_EQ(loaded.stats().totalAllocBytes,
              original.stats().totalAllocBytes);
    EXPECT_EQ(loaded.stats().iterations, 1);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded.events()[i].kind, original.events()[i].kind);
        EXPECT_EQ(loaded.events()[i].bytes,
                  original.events()[i].bytes);
    }
}

TEST(Trace, LoadRejectsBadHeader)
{
    std::stringstream ss("bogus-header 3\n");
    EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

// ------------------------------------------------------------ generator

namespace
{

TrainConfig
baseConfig(const char *model = "OPT-1.3B", const char *strat = "N")
{
    TrainConfig c;
    c.model = findModel(model);
    c.strategies = Strategies::parse(strat);
    c.gpus = 4;
    c.batchSize = 8;
    c.iterations = 4;
    return c;
}

} // namespace

TEST(TraceGen, ProducesValidBalancedTrace)
{
    const Trace t = generateTrainingTrace(baseConfig());
    EXPECT_NO_THROW(t.validate());
    EXPECT_EQ(t.stats().iterations, 4);
    EXPECT_GT(t.stats().allocCount, 100u);
}

TEST(TraceGen, DeterministicForSameSeed)
{
    const Trace a = generateTrainingTrace(baseConfig());
    const Trace b = generateTrainingTrace(baseConfig());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].bytes, b.events()[i].bytes);
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    auto cfg = baseConfig();
    const Trace a = generateTrainingTrace(cfg);
    cfg.seed = 77;
    const Trace b = generateTrainingTrace(cfg);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a.events()[i].bytes != b.events()[i].bytes;
    EXPECT_TRUE(differs);
}

TEST(TraceGen, RecomputationIncreasesAllocationCount)
{
    // Observation 1 / Fig 5: LoRA+recompute makes requests more
    // frequent and smaller on average.
    const Trace n = generateTrainingTrace(baseConfig("GPT-NeoX-20B",
                                                     "N"));
    const Trace lr = generateTrainingTrace(baseConfig("GPT-NeoX-20B",
                                                      "LR"));
    EXPECT_GT(lr.stats().allocCount, n.stats().allocCount);
    EXPECT_LT(lr.stats().avgAllocBytes(), n.stats().avgAllocBytes());
}

TEST(TraceGen, OffloadAddsStagingTraffic)
{
    const Trace ro = generateTrainingTrace(baseConfig("OPT-13B",
                                                      "RO"));
    const Trace r = generateTrainingTrace(baseConfig("OPT-13B", "R"));
    EXPECT_GT(ro.stats().allocCount, r.stats().allocCount);
}

TEST(TraceGen, PersistentEstimateMatchesSetupAllocations)
{
    for (const char *strat : {"N", "R", "LR", "RO", "LRO"}) {
        const auto cfg = baseConfig("OPT-13B", strat);
        const Bytes estimate = estimatePersistentBytes(cfg);
        const Trace t = generateTrainingTrace(cfg);
        // Sum the allocations before the first iteration mark.
        Bytes setup = 0;
        for (const auto &e : t.events()) {
            if (e.kind == EventKind::iterationMark)
                break;
            if (e.kind == EventKind::alloc)
                setup += e.bytes;
        }
        EXPECT_EQ(setup, estimate) << strat;
    }
}

TEST(TraceGen, ShardingShrinksPersistentState)
{
    auto cfg1 = baseConfig("OPT-13B", "N");
    cfg1.gpus = 1;
    auto cfg8 = cfg1;
    cfg8.gpus = 8;
    EXPECT_GT(estimatePersistentBytes(cfg1),
              4 * estimatePersistentBytes(cfg8));
}

TEST(TraceGen, LoraShrinksOptimizerState)
{
    const auto n = estimatePersistentBytes(baseConfig("OPT-13B", "N"));
    const auto lr =
        estimatePersistentBytes(baseConfig("OPT-13B", "LR"));
    EXPECT_LT(lr, n / 3);
}

TEST(TraceGen, OffloadRemovesOptimizerFromGpu)
{
    const auto r = estimatePersistentBytes(baseConfig("OPT-13B", "R"));
    const auto ro =
        estimatePersistentBytes(baseConfig("OPT-13B", "RO"));
    EXPECT_LT(ro, r);
}

TEST(TraceGen, MoreGpusMeanSmallerAverageAllocation)
{
    // Fig 4 driver: sharded persistent tensors shrink with scale
    // while the gather transients stay full-size.
    auto small = baseConfig("OPT-13B", "LR");
    small.gpus = 2;
    auto large = small;
    large.gpus = 16;
    const Trace a = generateTrainingTrace(small);
    const Trace b = generateTrainingTrace(large);
    EXPECT_GT(a.stats().avgAllocBytes(), b.stats().avgAllocBytes());
}

TEST(TraceGen, PlatformsChangeGatherQuantization)
{
    auto ds = baseConfig("GPT-2", "R");
    ds.platform = Platform::deepspeedZero3;
    auto cai = ds;
    cai.platform = Platform::colossalAi;
    const Trace a = generateTrainingTrace(ds);
    const Trace b = generateTrainingTrace(cai);
    // Chunk quantization rounds gathers up: more bytes per alloc.
    EXPECT_GT(b.stats().avgAllocBytes(), a.stats().avgAllocBytes());
}

TEST(TraceGen, DdpHasNoGathers)
{
    auto ddp = baseConfig("OPT-1.3B", "R");
    ddp.platform = Platform::ddp;
    auto zero = baseConfig("OPT-1.3B", "R");
    const Trace a = generateTrainingTrace(ddp);
    const Trace b = generateTrainingTrace(zero);
    EXPECT_LT(a.stats().allocCount, b.stats().allocCount);
}

TEST(TraceGen, BatchScalesActivationBytes)
{
    auto small = baseConfig("OPT-1.3B", "R");
    auto large = small;
    large.batchSize = 32;
    EXPECT_GT(generateTrainingTrace(large).stats().maxAllocBytes,
              generateTrainingTrace(small).stats().maxAllocBytes);
}

TEST(TraceGen, RejectsInvalidConfigs)
{
    auto cfg = baseConfig();
    cfg.gpus = 0;
    EXPECT_THROW(generateTrainingTrace(cfg), std::logic_error);
    cfg = baseConfig();
    cfg.iterations = 0;
    EXPECT_THROW(generateTrainingTrace(cfg), std::logic_error);
    cfg = baseConfig();
    cfg.batchSize = 0;
    EXPECT_THROW(generateTrainingTrace(cfg), std::logic_error);
}
