/**
 * @file
 * Device facade tests: the CUDA-driver-like API surface, the native
 * cudaMalloc path, time charging and API counters.
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::Device;
using vmm::DeviceConfig;

namespace
{

DeviceConfig
smallDevice(Bytes capacity = 64_MiB)
{
    DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(Device, FullVmmAllocationRoundTrip)
{
    Device dev(smallDevice());
    const auto va = dev.memAddressReserve(4_MiB);
    ASSERT_TRUE(va.ok());
    const auto h1 = dev.memCreate(2_MiB);
    const auto h2 = dev.memCreate(2_MiB);
    ASSERT_TRUE(h1.ok() && h2.ok());
    ASSERT_TRUE(dev.memMap(*va, *h1).ok());
    ASSERT_TRUE(dev.memMap(*va + 2_MiB, *h2).ok());
    ASSERT_TRUE(dev.memSetAccess(*va, 4_MiB).ok());
    EXPECT_TRUE(dev.mappings().accessible(*va, 4_MiB));
    EXPECT_EQ(dev.phys().inUse(), 4_MiB);

    ASSERT_TRUE(dev.memUnmap(*va, 4_MiB).ok());
    ASSERT_TRUE(dev.memRelease(*h1).ok());
    ASSERT_TRUE(dev.memRelease(*h2).ok());
    ASSERT_TRUE(dev.memAddressFree(*va).ok());
    EXPECT_EQ(dev.phys().inUse(), 0u);
    EXPECT_EQ(dev.vaSpace().reservedBytes(), 0u);
}

TEST(Device, ReserveRoundsToGranularity)
{
    Device dev(smallDevice());
    const auto va = dev.memAddressReserve(3_MiB);
    ASSERT_TRUE(va.ok());
    // The reservation internally covers 4 MiB.
    EXPECT_EQ(dev.vaSpace().reservedBytes(), 4_MiB);
}

TEST(Device, AddressFreeWithLiveMappingsFails)
{
    Device dev(smallDevice());
    const auto va = dev.memAddressReserve(2_MiB);
    const auto h = dev.memCreate(2_MiB);
    ASSERT_TRUE(va.ok() && h.ok());
    ASSERT_TRUE(dev.memMap(*va, *h).ok());
    EXPECT_EQ(dev.memAddressFree(*va).code(), Errc::handleInUse);
    ASSERT_TRUE(dev.memUnmap(*va, 2_MiB).ok());
    EXPECT_TRUE(dev.memAddressFree(*va).ok());
}

TEST(Device, ReleaseMappedHandleFails)
{
    Device dev(smallDevice());
    const auto va = dev.memAddressReserve(2_MiB);
    const auto h = dev.memCreate(2_MiB);
    ASSERT_TRUE(va.ok() && h.ok());
    ASSERT_TRUE(dev.memMap(*va, *h).ok());
    EXPECT_EQ(dev.memRelease(*h).code(), Errc::handleInUse);
}

TEST(Device, MapOutsideReservationFails)
{
    Device dev(smallDevice());
    const auto h = dev.memCreate(2_MiB);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(dev.memMap(0x1234000, *h).code(), Errc::notReserved);
}

TEST(Device, MapUnalignedFails)
{
    Device dev(smallDevice());
    const auto va = dev.memAddressReserve(4_MiB);
    const auto h = dev.memCreate(2_MiB);
    ASSERT_TRUE(va.ok() && h.ok());
    EXPECT_EQ(dev.memMap(*va + 1024, *h).code(), Errc::invalidValue);
}

TEST(Device, CreateBeyondCapacityFails)
{
    Device dev(smallDevice(8_MiB));
    const auto a = dev.memCreate(6_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(dev.memCreate(4_MiB).code(), Errc::outOfMemory);
}

TEST(Device, NativeMallocFreeRoundTrip)
{
    Device dev(smallDevice());
    const auto p = dev.mallocNative(5_MiB);
    ASSERT_TRUE(p.ok());
    // Rounded up to granularity internally.
    EXPECT_EQ(dev.phys().inUse(), 6_MiB);
    EXPECT_TRUE(dev.mappings().accessible(*p, 5_MiB));
    ASSERT_TRUE(dev.freeNative(*p).ok());
    EXPECT_EQ(dev.phys().inUse(), 0u);
}

TEST(Device, NativeFreeUnknownPointerFails)
{
    Device dev(smallDevice());
    EXPECT_EQ(dev.freeNative(0xabc).code(), Errc::invalidValue);
}

TEST(Device, NativeMallocOutOfMemory)
{
    Device dev(smallDevice(8_MiB));
    EXPECT_EQ(dev.mallocNative(16_MiB).code(), Errc::outOfMemory);
    EXPECT_EQ(dev.mallocNative(0).code(), Errc::invalidValue);
}

TEST(Device, ClockAdvancesOnApiCalls)
{
    Device dev(smallDevice());
    const Tick t0 = dev.now();
    const auto p = dev.mallocNative(2_MiB);
    ASSERT_TRUE(p.ok());
    const Tick t1 = dev.now();
    EXPECT_GT(t1, t0);
    ASSERT_TRUE(dev.freeNative(*p).ok());
    EXPECT_GT(dev.now(), t1);
    EXPECT_EQ(dev.counters().apiTime, dev.now());
}

TEST(Device, VmmCallsAreCheaperThanNativeForLargeChunks)
{
    // The premise of the whole design, Fig 2/6.
    Device dev(smallDevice(2_GiB + 64_MiB));
    const Tick t0 = dev.now();
    const auto p = dev.mallocNative(1_GiB);
    ASSERT_TRUE(p.ok());
    const Tick nativeCost = dev.now() - t0;

    const Tick t1 = dev.now();
    const auto va = dev.memAddressReserve(1_GiB);
    ASSERT_TRUE(va.ok());
    const Tick reserveCost = dev.now() - t1;
    EXPECT_LT(reserveCost, nativeCost / 100);
}

TEST(Device, CountersTrackCalls)
{
    Device dev(smallDevice());
    (void)dev.memAddressReserve(2_MiB);
    (void)dev.memCreate(2_MiB);
    (void)dev.mallocNative(2_MiB);
    dev.syncPenalty();
    dev.chargeCachedOp();
    const auto &c = dev.counters();
    EXPECT_EQ(c.addressReserve, 1u);
    EXPECT_EQ(c.create, 1u);
    EXPECT_EQ(c.mallocNative, 1u);
}

TEST(Device, FailedNativeMallocRollsBackCleanly)
{
    Device dev(smallDevice(8_MiB));
    const auto a = dev.mallocNative(8_MiB);
    ASSERT_TRUE(a.ok());
    const auto b = dev.mallocNative(2_MiB);
    EXPECT_FALSE(b.ok());
    // No leaked VA or physical bytes from the failed attempt.
    EXPECT_EQ(dev.phys().inUse(), 8_MiB);
    ASSERT_TRUE(dev.freeNative(*a).ok());
    EXPECT_EQ(dev.phys().inUse(), 0u);
    EXPECT_EQ(dev.vaSpace().reservedBytes(), 0u);
}
