/**
 * @file
 * Property-based tests: randomized allocate/free workloads replayed
 * against every allocator on small devices, checking the invariants
 * that must hold regardless of the request sequence.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/caching_allocator.hh"
#include "alloc/compacting_allocator.hh"
#include "alloc/expandable_allocator.hh"
#include "core/gmlake_allocator.hh"
#include "sim/runner.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

struct Param
{
    std::uint64_t seed;
    Bytes capacity;
    Bytes maxRequest;
    double freeBias; //!< probability of freeing when possible
};

void
PrintTo(const Param &p, std::ostream *os)
{
    *os << "seed=" << p.seed << " cap=" << p.capacity
        << " maxReq=" << p.maxRequest << " freeBias=" << p.freeBias;
}

class AllocatorFuzz : public ::testing::TestWithParam<Param>
{
  protected:
    /**
     * Drive @p allocator with a random sequence; reports the number
     * of successful allocations via @p successes (gtest ASSERT
     * macros require a void-returning function). OOM results are
     * tolerated (the device is deliberately small), everything else
     * must succeed.
     */
    template <typename CheckFn>
    void
    drive(alloc::Allocator &allocator, CheckFn &&check,
          std::size_t &successes, bool checkAddresses = true)
    {
        Rng rng(GetParam().seed);
        std::vector<alloc::AllocId> live;
        std::map<VirtAddr, std::pair<Bytes, alloc::AllocId>> ranges;
        successes = 0;

        for (int i = 0; i < 3000; ++i) {
            const bool doFree =
                !live.empty() &&
                rng.chance(GetParam().freeBias);
            if (doFree) {
                const std::size_t idx = static_cast<std::size_t>(
                    rng.uniformInt(0, live.size() - 1));
                const alloc::AllocId id = live[idx];
                ASSERT_TRUE(allocator.deallocate(id).ok());
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(idx));
                for (auto it = ranges.begin(); it != ranges.end();
                     ++it) {
                    if (it->second.second == id) {
                        ranges.erase(it);
                        break;
                    }
                }
            } else {
                const Bytes size = static_cast<Bytes>(rng.uniformInt(
                    1, GetParam().maxRequest));
                const auto got = allocator.allocate(size);
                if (!got.ok()) {
                    ASSERT_EQ(got.code(), Errc::outOfMemory);
                    continue;
                }
                ++successes;
                live.push_back(got->id);
                if (!checkAddresses)
                    continue; // a moving allocator relocates blocks

                // Live VA ranges must never overlap: the request
                // rounds up to at most maxRequest*2 internally, use
                // the requested size as the minimum footprint.
                const auto [it, fresh] = ranges.emplace(
                    got->addr, std::make_pair(size, got->id));
                ASSERT_TRUE(fresh) << "address reused while live";
                if (it != ranges.begin()) {
                    const auto prev = std::prev(it);
                    ASSERT_LE(prev->first + prev->second.first,
                              it->first)
                        << "overlapping live allocations";
                }
                if (const auto next = std::next(it);
                    next != ranges.end()) {
                    ASSERT_LE(it->first + size, next->first)
                        << "overlapping live allocations";
                }
            }
            // Universal invariants.
            ASSERT_GE(allocator.stats().reservedBytes(),
                      allocator.stats().activeBytes());
            if (i % 250 == 0)
                check();
        }
        check();
    }

    static vmm::DeviceConfig
    device(Bytes capacity)
    {
        vmm::DeviceConfig cfg;
        cfg.capacity = capacity;
        cfg.granularity = 2_MiB;
        return cfg;
    }
};

} // namespace

TEST_P(AllocatorFuzz, CachingAllocatorInvariants)
{
    vmm::Device dev(device(GetParam().capacity));
    alloc::CachingAllocator allocator(dev);
    std::size_t n = 0;
    drive(allocator, [&] { allocator.checkConsistency(); }, n);
    EXPECT_GT(n, 0u);
    // Device-level accounting agrees with the allocator.
    EXPECT_EQ(dev.phys().inUse(), allocator.stats().reservedBytes());
}

TEST_P(AllocatorFuzz, CompactingAllocatorInvariants)
{
    vmm::Device dev(device(GetParam().capacity));
    alloc::CompactingConfig cfg;
    cfg.slabSize = 32_MiB; // the fuzz devices are small
    alloc::CompactingAllocator allocator(dev, cfg);
    std::size_t n = 0;
    // Address-stability checks are skipped: compaction relocates
    // live blocks (exactly why it is not transparently deployable).
    drive(allocator, [&] { allocator.checkConsistency(); }, n,
          /*checkAddresses=*/false);
    EXPECT_GT(n, 0u);
    EXPECT_EQ(dev.phys().inUse(), allocator.stats().reservedBytes());
}

TEST_P(AllocatorFuzz, ExpandableInvariants)
{
    vmm::Device dev(device(GetParam().capacity));
    alloc::ExpandableSegmentsAllocator allocator(dev);
    std::size_t n = 0;
    drive(allocator, [&] { allocator.checkConsistency(); }, n);
    EXPECT_GT(n, 0u);
    EXPECT_EQ(dev.phys().inUse(), allocator.stats().reservedBytes());
}

TEST_P(AllocatorFuzz, GmlakeInvariants)
{
    vmm::Device dev(device(GetParam().capacity));
    core::GMLakeAllocator allocator(dev);
    std::size_t n = 0;
    drive(allocator, [&] { allocator.checkConsistency(); }, n);
    EXPECT_GT(n, 0u);
    // GMLake reserves physical chunks plus the small pool's segments.
    EXPECT_EQ(dev.phys().inUse(), allocator.stats().reservedBytes());
}

TEST_P(AllocatorFuzz, GmlakeEmptyCacheAlwaysSafe)
{
    vmm::Device dev(device(GetParam().capacity));
    core::GMLakeAllocator allocator(dev);
    Rng rng(GetParam().seed ^ 0xabcdef);
    std::vector<alloc::AllocId> live;
    for (int i = 0; i < 600; ++i) {
        if (!live.empty() && rng.chance(0.45)) {
            const std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0, live.size() - 1));
            ASSERT_TRUE(allocator.deallocate(live[idx]).ok());
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        } else {
            const auto got = allocator.allocate(static_cast<Bytes>(
                rng.uniformInt(1, GetParam().maxRequest)));
            if (got.ok())
                live.push_back(got->id);
        }
        if (i % 97 == 0) {
            allocator.emptyCache();
            allocator.checkConsistency();
        }
    }
    // Everything still live must be deallocatable afterwards.
    for (const auto id : live)
        ASSERT_TRUE(allocator.deallocate(id).ok());
    allocator.emptyCache();
    EXPECT_EQ(allocator.physicalBytes(), 0u);
    allocator.checkConsistency();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, AllocatorFuzz,
    ::testing::Values(
        Param{101, 128_MiB, 8_MiB, 0.40},
        Param{202, 128_MiB, 8_MiB, 0.55},
        Param{303, 256_MiB, 24_MiB, 0.45},
        Param{404, 64_MiB, 16_MiB, 0.50},  // high pressure
        Param{505, 512_MiB, 48_MiB, 0.35},
        Param{606, 256_MiB, 1_MiB, 0.45},  // small-path heavy
        Param{707, 96_MiB, 12_MiB, 0.60},
        Param{808, 1_GiB, 96_MiB, 0.30}));
