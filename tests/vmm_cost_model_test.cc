/**
 * @file
 * Cost-model tests: the latency model must reproduce Table 1 of the
 * paper at its calibration points and behave sensibly in between
 * (which Fig 6 sweeps).
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/cost_model.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::CostModel;

namespace
{

/** Total VMM cost of building a block from uniform chunks. */
double
vmmBlockCost(const CostModel &m, Bytes block, Bytes chunk)
{
    const std::size_t n = block / chunk;
    double t = static_cast<double>(m.memAddressReserve(block));
    t += static_cast<double>(n) * static_cast<double>(m.memCreate(chunk));
    t += static_cast<double>(n) * static_cast<double>(m.memMap(chunk));
    t += static_cast<double>(m.memSetAccess(n, chunk));
    return t;
}

} // namespace

TEST(CostModel, NativeAllocGrowsWithSize)
{
    CostModel m;
    EXPECT_LT(m.nativeAlloc(2_MiB), m.nativeAlloc(2_GiB));
    EXPECT_GT(m.nativeAlloc(1), 0);
}

TEST(CostModel, Table1RatiosAt2MBChunks)
{
    CostModel m;
    const double ref = static_cast<double>(m.nativeAlloc(2_GiB));
    const std::size_t n = 1024; // 2 GiB / 2 MiB

    // Table 1, column "2 MB", all normalized to cuMemAlloc(2GB).
    EXPECT_NEAR(m.memAddressReserve(2_GiB) / ref, 0.003, 0.001);
    EXPECT_NEAR(n * m.memCreate(2_MiB) / ref, 18.1, 0.5);
    EXPECT_NEAR(n * m.memMap(2_MiB) / ref, 0.70, 0.05);
    EXPECT_NEAR(m.memSetAccess(n, 2_MiB) / ref, 96.8, 1.0);

    // Total ~115x (the paper's headline overhead number).
    EXPECT_NEAR(vmmBlockCost(m, 2_GiB, 2_MiB) / ref, 115.4, 3.0);
}

TEST(CostModel, Table1RatiosAt128MBChunks)
{
    CostModel m;
    const double ref = static_cast<double>(m.nativeAlloc(2_GiB));
    const std::size_t n = 16;

    EXPECT_NEAR(n * m.memCreate(128_MiB) / ref, 0.89, 0.05);
    EXPECT_NEAR(n * m.memMap(128_MiB) / ref, 0.01, 0.005);
    EXPECT_NEAR(m.memSetAccess(n, 128_MiB) / ref, 8.2, 0.3);
    EXPECT_NEAR(vmmBlockCost(m, 2_GiB, 128_MiB) / ref, 9.1, 0.5);
}

TEST(CostModel, Table1RatiosAt1GBChunks)
{
    CostModel m;
    const double ref = static_cast<double>(m.nativeAlloc(2_GiB));
    const std::size_t n = 2;

    EXPECT_NEAR(n * m.memCreate(1024_MiB) / ref, 0.79, 0.05);
    EXPECT_NEAR(m.memSetAccess(n, 1024_MiB) / ref, 0.7, 0.1);
    EXPECT_NEAR(vmmBlockCost(m, 2_GiB, 1024_MiB) / ref, 1.5, 0.2);
}

TEST(CostModel, VmmCostDecreasesWithChunkSize)
{
    // Fig 6: larger chunks make the VM allocator cheaper.
    CostModel m;
    double prev = vmmBlockCost(m, 2_GiB, 2_MiB);
    for (Bytes chunk : {4_MiB, 8_MiB, 16_MiB, 32_MiB, 64_MiB, 128_MiB,
                        256_MiB, 512_MiB, 1024_MiB}) {
        const double cur = vmmBlockCost(m, 2_GiB, chunk);
        EXPECT_LT(cur, prev) << "chunk " << chunk;
        prev = cur;
    }
}

TEST(CostModel, InterpolationIsSmoothBetweenCalibrationPoints)
{
    CostModel m;
    // A chunk size between calibration points must land between the
    // neighbouring per-chunk costs (log-log monotone in each span).
    const Tick c2 = m.memCreate(2_MiB);
    const Tick c16 = m.memCreate(16_MiB);
    const Tick c128 = m.memCreate(128_MiB);
    EXPECT_GT(c16, c2);
    EXPECT_LT(c16, c128);
}

TEST(CostModel, CachedOpMuchCheaperThanNative)
{
    CostModel m;
    // The reason caching allocators exist: ~10x or more gap.
    EXPECT_LT(m.cachedOp() * 10, m.nativeAlloc(20_MiB));
}

TEST(CostModel, CustomParamsPropagate)
{
    vmm::CostParams p;
    p.cachedOpNs = 42;
    p.nativeFreeNs = 777;
    CostModel m(p);
    EXPECT_EQ(m.cachedOp(), 42);
    EXPECT_EQ(m.nativeFree(), 777);
}
