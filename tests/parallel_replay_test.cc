/**
 * @file
 * Deterministic parallel replay: running any registry scenario with
 * --engine-threads > 1 in the default deterministic commit mode must
 * produce bit-identical allocation decisions to the serial engine.
 * Every scenario's recorded runs and metrics are folded into the
 * same FNV-1a digest decision_equivalence_test pins, and the digest
 * is compared across 1, 2, and 8 engine threads — covering the
 * serial path, the partially-staged path (fewer stagers than
 * sessions), and the fully-staged path.
 *
 * Unlike decision_equivalence_test there are no recorded constants
 * here: the serial digest is the oracle, so this suite stays valid
 * across intentional decision changes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/experiment.hh"

using namespace gmlake;
using namespace gmlake::sim;

namespace
{

/** FNV-1a 64-bit, fed field by field. */
class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            mHash ^= (v >> (8 * i)) & 0xff;
            mHash *= 0x100000001b3ULL;
        }
    }

    void
    add(double v)
    {
        if (!std::isfinite(v)) {
            add(std::uint64_t{0x7ff0dead});
            return;
        }
        add(static_cast<std::uint64_t>(
            std::llround(v * 1048576.0)));
    }

    void
    add(std::string_view s)
    {
        for (const char c : s) {
            mHash ^= static_cast<unsigned char>(c);
            mHash *= 0x100000001b3ULL;
        }
        add(static_cast<std::uint64_t>(s.size()));
    }

    std::uint64_t value() const { return mHash; }

  private:
    std::uint64_t mHash = 0xcbf29ce484222325ULL;
};

/**
 * Run one registry scenario at smoke scale with the given engine
 * thread count and digest everything deterministic it recorded
 * (host-wallclock and RSS fields excluded, exactly like
 * decision_equivalence_test).
 */
std::uint64_t
digestAt(const Experiment &experiment, int engineThreads)
{
    ExperimentOptions options;
    options.iterations = 1;
    options.engineThreads = engineThreads;
    std::ostringstream sink;
    ExperimentContext ctx(options, sink);
    experiment.run(ctx);

    Digest d;
    for (const RunRecord &r : ctx.records()) {
        d.add(r.label);
        d.add(r.allocator);
        d.add(static_cast<std::uint64_t>(r.result.oom));
        d.add(static_cast<std::uint64_t>(r.result.oomAt));
        d.add(static_cast<std::uint64_t>(r.result.iterationsDone));
        d.add(static_cast<std::uint64_t>(r.result.simTime));
        d.add(static_cast<std::uint64_t>(r.result.peakActive));
        d.add(static_cast<std::uint64_t>(r.result.peakReserved));
        d.add(r.result.utilization);
        d.add(r.result.fragmentation);
        d.add(r.result.samplesPerSec);
        d.add(r.result.allocCount);
        d.add(r.result.freeCount);
        d.add(static_cast<std::uint64_t>(r.result.deviceApiTime));
        d.add(static_cast<std::uint64_t>(r.result.series.size()));
    }
    for (const MetricRecord &m : ctx.metrics()) {
        if (m.name.find("wall") != std::string::npos ||
            m.name.find("rss") != std::string::npos)
            continue; // host wallclock/RSS: nondeterministic by design
        d.add(m.label);
        d.add(m.name);
        d.add(m.value);
    }
    return d.value();
}

} // namespace

TEST(ParallelReplay, EveryScenarioDigestsEquallyAcrossThreadCounts)
{
    for (const Experiment &e : allExperiments()) {
        const std::uint64_t serial = digestAt(e, 1);
        EXPECT_EQ(digestAt(e, 2), serial)
            << "scenario '" << e.name
            << "' diverges at 2 engine threads";
        EXPECT_EQ(digestAt(e, 8), serial)
            << "scenario '" << e.name
            << "' diverges at 8 engine threads";
    }
}
