/**
 * @file
 * BFC caching allocator tests: rounding, pool selection, split and
 * coalesce behaviour, segment caching, emptyCache, OOM retry, and
 * the accounting used for the paper's fragmentation metric.
 */

#include <gtest/gtest.h>

#include "alloc/caching_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using alloc::CachingAllocator;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(CachingAllocator, SmallRequestUsesSmallSegment)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(100_KiB);
    ASSERT_TRUE(a.ok());
    // One 2 MiB small-pool segment was reserved.
    EXPECT_EQ(alloc.stats().reservedBytes(), 2_MiB);
    EXPECT_EQ(alloc.segmentCount(), 1u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, MidRequestUses20MiBSegment)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(3_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 20_MiB);
    alloc.checkConsistency();
}

TEST(CachingAllocator, LargeRequestUsesExactRoundedSegment)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(33_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 34_MiB);
    alloc.checkConsistency();
}

TEST(CachingAllocator, RequestsRoundTo512)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(1);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(alloc.stats().activeBytes(), 512u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, FreeDoesNotReturnMemoryToDevice)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    // The segment stays cached (that is the whole point).
    EXPECT_EQ(alloc.stats().reservedBytes(), 30_MiB);
    EXPECT_EQ(alloc.stats().activeBytes(), 0u);
    EXPECT_EQ(dev.counters().freeNative, 0u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, CachedBlockIsReused)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB);
    ASSERT_TRUE(a.ok());
    const VirtAddr addr = a->addr;
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    const auto b = alloc.allocate(30_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, addr);
    EXPECT_EQ(dev.counters().mallocNative, 1u); // only one segment
    alloc.checkConsistency();
}

TEST(CachingAllocator, SplitLeavesRemainderInPool)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto big = alloc.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());

    // A smaller allocation splits the cached 60 MiB block.
    const auto small = alloc.allocate(24_MiB);
    ASSERT_TRUE(small.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 60_MiB);
    EXPECT_EQ(alloc.cachedBytes(), 36_MiB);
    alloc.checkConsistency();

    // The remainder serves the next request without device traffic.
    const auto next = alloc.allocate(36_MiB);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(dev.counters().mallocNative, 1u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, NeighboursCoalesceOnFree)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto big = alloc.allocate(60_MiB);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());

    const auto a = alloc.allocate(20_MiB);
    const auto b = alloc.allocate(20_MiB);
    const auto c = alloc.allocate(20_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    ASSERT_TRUE(alloc.deallocate(c->id).ok());
    ASSERT_TRUE(alloc.deallocate(b->id).ok()); // merges all three
    // The whole segment is one free block again and can be reused.
    const auto whole = alloc.allocate(60_MiB);
    ASSERT_TRUE(whole.ok());
    EXPECT_EQ(dev.counters().mallocNative, 1u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, EmptyCacheReleasesWholeFreeSegments)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB);
    const auto b = alloc.allocate(12_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    alloc.emptyCache();
    // a's segment went back to the device; b's exact-size 12 MiB
    // segment stays (occupied).
    EXPECT_EQ(alloc.stats().reservedBytes(), 12_MiB);
    EXPECT_EQ(dev.counters().freeNative, 1u);
    alloc.checkConsistency();
}

TEST(CachingAllocator, EmptyCacheKeepsPartiallyUsedSegments)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    // Two allocations inside one 20 MiB segment; free only one.
    const auto a = alloc.allocate(4_MiB);
    const auto b = alloc.allocate(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    alloc.emptyCache();
    // The pinned segment cannot be released: fragmentation.
    EXPECT_EQ(alloc.stats().reservedBytes(), 20_MiB);
    alloc.checkConsistency();
}

TEST(CachingAllocator, OomRetriesAfterReleasingCache)
{
    vmm::Device dev(smallDevice(64_MiB));
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(40_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    // 40 MiB is cached; a 60 MiB request does not fit next to it,
    // but succeeds after the allocator flushes its cache.
    const auto b = alloc.allocate(60_MiB);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(alloc.stats().reservedBytes(), 60_MiB);
    alloc.checkConsistency();
}

TEST(CachingAllocator, HardOomPropagates)
{
    vmm::Device dev(smallDevice(32_MiB));
    CachingAllocator alloc(dev);
    const auto a = alloc.allocate(24_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(alloc.allocate(24_MiB).code(), Errc::outOfMemory);
    alloc.checkConsistency();
}

TEST(CachingAllocator, UnknownIdRejected)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    EXPECT_EQ(alloc.deallocate(42).code(), Errc::invalidValue);
}

TEST(CachingAllocator, ZeroByteRejected)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    EXPECT_EQ(alloc.allocate(0).code(), Errc::invalidValue);
}

TEST(CachingAllocator, FragmentationMetricReflectsWaste)
{
    vmm::Device dev(smallDevice());
    CachingAllocator alloc(dev);
    // Allocate two large blocks, free one, then request a larger
    // block: the freed 40 MiB segment cannot serve it, so reserved
    // grows past the active peak -> fragmentation.
    const auto a = alloc.allocate(40_MiB);
    const auto b = alloc.allocate(40_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    const auto c = alloc.allocate(50_MiB);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(alloc.stats().peakReservedBytes(), 130_MiB);
    EXPECT_EQ(alloc.stats().peakActiveBytes(), 90_MiB);
    EXPECT_GT(alloc.stats().fragmentationRatio(), 0.25);
    alloc.checkConsistency();
}

TEST(CachingAllocator, ManyMixedOpsStayConsistent)
{
    vmm::Device dev(smallDevice(1_GiB));
    CachingAllocator alloc(dev);
    std::vector<alloc::AllocId> live;
    std::uint64_t x = 99;
    auto rnd = [&x]() {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 4000; ++i) {
        if (live.empty() || rnd() % 3 != 0) {
            const Bytes size = 512 + rnd() % (8_MiB);
            const auto a = alloc.allocate(size);
            if (!a.ok()) {
                // The random walk outgrew the device; trim and go on.
                ASSERT_EQ(a.code(), Errc::outOfMemory);
                for (std::size_t k = 0; k < live.size() / 2; ++k) {
                    ASSERT_TRUE(alloc.deallocate(live[k]).ok());
                }
                live.erase(live.begin(),
                           live.begin() + static_cast<std::ptrdiff_t>(
                                              live.size() / 2));
                continue;
            }
            live.push_back(a->id);
        } else {
            const std::size_t idx = rnd() % live.size();
            ASSERT_TRUE(alloc.deallocate(live[idx]).ok());
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
        if (i % 512 == 0)
            alloc.checkConsistency();
    }
    alloc.checkConsistency();
    EXPECT_GE(alloc.stats().reservedBytes(),
              alloc.stats().activeBytes());
}
