/**
 * @file
 * Mapping table tests: VA->PA mapping semantics, the multi-VA
 * aliasing that virtual memory stitching relies on, and the error
 * paths for malformed map/unmap requests.
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/mapping_table.hh"
#include "vmm/phys_memory.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::MappingTable;
using vmm::PhysMemory;

namespace
{

class MappingTest : public ::testing::Test
{
  protected:
    MappingTest() : phys(64_MiB, 2_MiB), table(phys) {}

    PhysHandle
    chunk()
    {
        const auto h = phys.create(2_MiB);
        EXPECT_TRUE(h.ok());
        return *h;
    }

    PhysMemory phys;
    MappingTable table;
    static constexpr VirtAddr base = 0x100000000ULL;
};

} // namespace

TEST_F(MappingTest, MapAndTranslate)
{
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    EXPECT_EQ(*table.translate(base), h);
    EXPECT_EQ(*table.translate(base + 2_MiB - 1), h);
    EXPECT_EQ(table.translate(base + 2_MiB).code(), Errc::notMapped);
    EXPECT_EQ(phys.mapRefs(h), 1u);
}

TEST_F(MappingTest, OverlapRejected)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    EXPECT_EQ(table.map(base, h2).code(), Errc::alreadyMapped);
    EXPECT_EQ(table.map(base + 1_MiB, h2).code(), Errc::alreadyMapped);
    // Adjacent is fine.
    EXPECT_TRUE(table.map(base + 2_MiB, h2).ok());
}

TEST_F(MappingTest, SameHandleAtTwoAddresses)
{
    // The core trick of VMS: one physical chunk, several VAs.
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    ASSERT_TRUE(table.map(base + 64_MiB, h).ok());
    EXPECT_EQ(phys.mapRefs(h), 2u);
    EXPECT_EQ(*table.translate(base), h);
    EXPECT_EQ(*table.translate(base + 64_MiB), h);
}

TEST_F(MappingTest, UnmapExactRange)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    ASSERT_TRUE(table.unmap(base, 4_MiB).ok());
    EXPECT_EQ(phys.mapRefs(h1), 0u);
    EXPECT_EQ(phys.mapRefs(h2), 0u);
    EXPECT_EQ(table.mappingCount(), 0u);
}

TEST_F(MappingTest, UnmapCannotSplitAMapping)
{
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    EXPECT_EQ(table.unmap(base, 1_MiB).code(), Errc::invalidValue);
    EXPECT_EQ(table.unmap(base + 1_MiB, 1_MiB).code(),
              Errc::invalidValue);
}

TEST_F(MappingTest, UnmapUnmappedRangeFails)
{
    EXPECT_EQ(table.unmap(base, 2_MiB).code(), Errc::notMapped);
}

TEST_F(MappingTest, SetAccessAndAccessible)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    EXPECT_FALSE(table.accessible(base, 4_MiB));
    ASSERT_TRUE(table.setAccess(base, 4_MiB).ok());
    EXPECT_TRUE(table.accessible(base, 4_MiB));
    EXPECT_TRUE(table.accessible(base + 1_MiB, 2_MiB));
    // Beyond the mapped range there is a gap.
    EXPECT_FALSE(table.accessible(base, 6_MiB));
}

TEST_F(MappingTest, SetAccessOnUnmappedFails)
{
    EXPECT_EQ(table.setAccess(base, 2_MiB).code(), Errc::notMapped);
}

TEST_F(MappingTest, MappingsInReportsOrderedEntries)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    ASSERT_TRUE(table.map(base, h1).ok());
    const auto entries = table.mappingsIn(base, 4_MiB);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].va, base);
    EXPECT_EQ(entries[0].handle, h1);
    EXPECT_EQ(entries[1].va, base + 2_MiB);
    EXPECT_EQ(entries[1].handle, h2);
}

TEST_F(MappingTest, MapUnknownHandleFails)
{
    EXPECT_EQ(table.map(base, 4242).code(), Errc::invalidValue);
}
