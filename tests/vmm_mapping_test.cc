/**
 * @file
 * Mapping table tests: VA->PA mapping semantics, the multi-VA
 * aliasing that virtual memory stitching relies on, and the error
 * paths for malformed map/unmap requests.
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/mapping_table.hh"
#include "vmm/phys_memory.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::MappingTable;
using vmm::PhysMemory;

namespace
{

class MappingTest : public ::testing::Test
{
  protected:
    MappingTest() : phys(64_MiB, 2_MiB), table(phys) {}

    PhysHandle
    chunk()
    {
        const auto h = phys.create(2_MiB);
        EXPECT_TRUE(h.ok());
        return *h;
    }

    PhysMemory phys;
    MappingTable table;
    static constexpr VirtAddr base = 0x100000000ULL;
};

} // namespace

TEST_F(MappingTest, MapAndTranslate)
{
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    EXPECT_EQ(*table.translate(base), h);
    EXPECT_EQ(*table.translate(base + 2_MiB - 1), h);
    EXPECT_EQ(table.translate(base + 2_MiB).code(), Errc::notMapped);
    EXPECT_EQ(phys.mapRefs(h), 1u);
}

TEST_F(MappingTest, OverlapRejected)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    EXPECT_EQ(table.map(base, h2).code(), Errc::alreadyMapped);
    EXPECT_EQ(table.map(base + 1_MiB, h2).code(), Errc::alreadyMapped);
    // Adjacent is fine.
    EXPECT_TRUE(table.map(base + 2_MiB, h2).ok());
}

TEST_F(MappingTest, SameHandleAtTwoAddresses)
{
    // The core trick of VMS: one physical chunk, several VAs.
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    ASSERT_TRUE(table.map(base + 64_MiB, h).ok());
    EXPECT_EQ(phys.mapRefs(h), 2u);
    EXPECT_EQ(*table.translate(base), h);
    EXPECT_EQ(*table.translate(base + 64_MiB), h);
}

TEST_F(MappingTest, UnmapExactRange)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    ASSERT_TRUE(table.unmap(base, 4_MiB).ok());
    EXPECT_EQ(phys.mapRefs(h1), 0u);
    EXPECT_EQ(phys.mapRefs(h2), 0u);
    EXPECT_EQ(table.mappingCount(), 0u);
}

TEST_F(MappingTest, UnmapCannotSplitAMapping)
{
    const PhysHandle h = chunk();
    ASSERT_TRUE(table.map(base, h).ok());
    EXPECT_EQ(table.unmap(base, 1_MiB).code(), Errc::invalidValue);
    EXPECT_EQ(table.unmap(base + 1_MiB, 1_MiB).code(),
              Errc::invalidValue);
}

TEST_F(MappingTest, UnmapUnmappedRangeFails)
{
    EXPECT_EQ(table.unmap(base, 2_MiB).code(), Errc::notMapped);
}

TEST_F(MappingTest, SetAccessAndAccessible)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    EXPECT_FALSE(table.accessible(base, 4_MiB));
    ASSERT_TRUE(table.setAccess(base, 4_MiB).ok());
    EXPECT_TRUE(table.accessible(base, 4_MiB));
    EXPECT_TRUE(table.accessible(base + 1_MiB, 2_MiB));
    // Beyond the mapped range there is a gap.
    EXPECT_FALSE(table.accessible(base, 6_MiB));
}

TEST_F(MappingTest, SetAccessOnUnmappedFails)
{
    EXPECT_EQ(table.setAccess(base, 2_MiB).code(), Errc::notMapped);
}

TEST_F(MappingTest, MappingsInReportsOrderedEntries)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base + 2_MiB, h2).ok());
    ASSERT_TRUE(table.map(base, h1).ok());
    const auto entries = table.mappingsIn(base, 4_MiB);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].va, base);
    EXPECT_EQ(entries[0].handle, h1);
    EXPECT_EQ(entries[1].va, base + 2_MiB);
    EXPECT_EQ(entries[1].handle, h2);
}

TEST_F(MappingTest, MapUnknownHandleFails)
{
    EXPECT_EQ(table.map(base, 4242).code(), Errc::invalidValue);
}

// ------------------------------------------------- batched entry points

TEST_F(MappingTest, MapRangeCoalescesIntoOneExtent)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    const PhysHandle h3 = chunk();
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, h2}, {base + 4_MiB, h3}};
    ASSERT_TRUE(table.mapRange(batch).ok());
    // Three chunk-level mappings, one coalesced extent.
    EXPECT_EQ(table.mappingCount(), 3u);
    EXPECT_EQ(table.extentCount(), 1u);
    EXPECT_EQ(phys.mapRefs(h1), 1u);
    EXPECT_EQ(phys.mapRefs(h2), 1u);
    EXPECT_EQ(phys.mapRefs(h3), 1u);
    // translate resolves each chunk across the coalesced extent.
    EXPECT_EQ(*table.translate(base), h1);
    EXPECT_EQ(*table.translate(base + 2_MiB), h2);
    EXPECT_EQ(*table.translate(base + 4_MiB + 1), h3);
    EXPECT_EQ(*table.translate(base + 6_MiB - 1), h3);
    EXPECT_EQ(table.translate(base + 6_MiB).code(), Errc::notMapped);
    const auto entries = table.mappingsIn(base, 6_MiB);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].handle, h1);
    EXPECT_EQ(entries[1].va, base + 2_MiB);
    EXPECT_EQ(entries[2].handle, h3);
}

TEST_F(MappingTest, MapRangeOverlapLeavesTableUntouched)
{
    const PhysHandle mid = chunk();
    ASSERT_TRUE(table.map(base + 2_MiB, mid).ok());

    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    // The second target collides with the pre-existing mapping.
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, h2}};
    EXPECT_EQ(table.mapRange(batch).code(), Errc::alreadyMapped);
    // Partial-failure atomicity: nothing from the batch landed.
    EXPECT_EQ(table.mappingCount(), 1u);
    EXPECT_EQ(phys.mapRefs(h1), 0u);
    EXPECT_EQ(phys.mapRefs(h2), 0u);
    EXPECT_EQ(table.translate(base).code(), Errc::notMapped);
}

TEST_F(MappingTest, MapRangeUnknownHandleLeavesTableUntouched)
{
    const PhysHandle h1 = chunk();
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, 424242}};
    EXPECT_EQ(table.mapRange(batch).code(), Errc::invalidValue);
    EXPECT_EQ(table.mappingCount(), 0u);
    EXPECT_EQ(phys.mapRefs(h1), 0u);
}

TEST_F(MappingTest, MapRangeRejectsUnsortedBatch)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base + 2_MiB, h1}, {base, h2}};
    EXPECT_EQ(table.mapRange(batch).code(), Errc::invalidValue);
    EXPECT_EQ(table.mappingCount(), 0u);
}

TEST_F(MappingTest, UnmapSplitsCoalescedExtentAtChunkBoundary)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    const PhysHandle h3 = chunk();
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, h2}, {base + 4_MiB, h3}};
    ASSERT_TRUE(table.mapRange(batch).ok());

    // Carve the middle chunk out of the coalesced extent.
    ASSERT_TRUE(table.unmap(base + 2_MiB, 2_MiB).ok());
    EXPECT_EQ(table.mappingCount(), 2u);
    EXPECT_EQ(table.extentCount(), 2u);
    EXPECT_EQ(phys.mapRefs(h2), 0u);
    EXPECT_EQ(*table.translate(base), h1);
    EXPECT_EQ(table.translate(base + 2_MiB).code(), Errc::notMapped);
    EXPECT_EQ(*table.translate(base + 4_MiB), h3);

    // Mid-chunk cuts are still rejected.
    EXPECT_EQ(table.unmap(base + 1_MiB, 1_MiB).code(),
              Errc::invalidValue);
    EXPECT_EQ(table.unmap(base, 1_MiB).code(), Errc::invalidValue);
}

TEST_F(MappingTest, UnmapRangeIsAtomicAcrossRanges)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());
    ASSERT_TRUE(table.map(base + 4_MiB, h2).ok());

    // Second range is unmapped: the whole batch must fail without
    // touching the first range.
    const std::pair<VirtAddr, Bytes> bad[] = {
        {base, 2_MiB}, {base + 8_MiB, 2_MiB}};
    EXPECT_EQ(table.unmapRange(bad).code(), Errc::notMapped);
    EXPECT_EQ(table.mappingCount(), 2u);
    EXPECT_EQ(phys.mapRefs(h1), 1u);

    const std::pair<VirtAddr, Bytes> good[] = {
        {base, 2_MiB}, {base + 4_MiB, 2_MiB}};
    ASSERT_TRUE(table.unmapRange(good).ok());
    EXPECT_EQ(table.mappingCount(), 0u);
    EXPECT_EQ(phys.mapRefs(h1), 0u);
    EXPECT_EQ(phys.mapRefs(h2), 0u);
}

TEST_F(MappingTest, SetAccessSplitsMixedStateExtent)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    const PhysHandle h3 = chunk();
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, h2}, {base + 4_MiB, h3}};
    ASSERT_TRUE(table.mapRange(batch).ok());

    // Grant access to the middle chunk only: the extent splits so
    // chunk-level access state is preserved exactly.
    ASSERT_TRUE(table.setAccess(base + 2_MiB, 2_MiB).ok());
    EXPECT_FALSE(table.accessible(base, 2_MiB));
    EXPECT_TRUE(table.accessible(base + 2_MiB, 2_MiB));
    EXPECT_FALSE(table.accessible(base + 4_MiB, 2_MiB));
    EXPECT_FALSE(table.accessible(base, 6_MiB));
    // Chunk count is unchanged; the extents multiplied.
    EXPECT_EQ(table.mappingCount(), 3u);
    EXPECT_EQ(table.extentCount(), 3u);

    ASSERT_TRUE(table.setAccess(base, 6_MiB).ok());
    EXPECT_TRUE(table.accessible(base, 6_MiB));
}

TEST_F(MappingTest, SetAccessRangeIsAtomicAcrossRanges)
{
    const PhysHandle h1 = chunk();
    ASSERT_TRUE(table.map(base, h1).ok());

    const std::pair<VirtAddr, Bytes> bad[] = {
        {base, 2_MiB}, {base + 8_MiB, 2_MiB}};
    EXPECT_EQ(table.setAccessRange(bad).code(), Errc::notMapped);
    EXPECT_FALSE(table.accessible(base, 2_MiB));

    const std::pair<VirtAddr, Bytes> good[] = {{base, 2_MiB}};
    ASSERT_TRUE(table.setAccessRange(good).ok());
    EXPECT_TRUE(table.accessible(base, 2_MiB));
}

TEST_F(MappingTest, RangeStatsMatchMappingsIn)
{
    const PhysHandle h1 = chunk();
    const PhysHandle h2 = chunk();
    const auto big = phys.create(4_MiB);
    ASSERT_TRUE(big.ok());
    const std::pair<VirtAddr, PhysHandle> batch[] = {
        {base, h1}, {base + 2_MiB, h2}, {base + 4_MiB, *big}};
    ASSERT_TRUE(table.mapRange(batch).ok());

    for (const auto &[va, size] :
         {std::pair<VirtAddr, Bytes>{base, 8_MiB},
          {base, 2_MiB},
          {base + 2_MiB, 4_MiB},
          {base + 1_MiB, 2_MiB},
          {base + 6_MiB, 2_MiB}}) {
        const auto stats = table.rangeStats(va, size);
        const auto entries = table.mappingsIn(va, size);
        EXPECT_EQ(stats.chunks, entries.size()) << va;
        Bytes bytes = 0;
        for (const auto &e : entries)
            bytes += e.size;
        EXPECT_EQ(stats.bytes, bytes) << va;
        EXPECT_EQ(table.hasMappingsIn(va, size), !entries.empty())
            << va;
    }

    // The scratch-filling overload agrees with the allocating one.
    std::vector<MappingTable::Entry> scratch;
    table.mappingsIn(base, 8_MiB, scratch);
    const auto fresh = table.mappingsIn(base, 8_MiB);
    ASSERT_EQ(scratch.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(scratch[i].va, fresh[i].va);
        EXPECT_EQ(scratch[i].handle, fresh[i].handle);
    }
}
