/**
 * @file
 * ThreadPool and parallelFor tests: every job runs exactly once, the
 * pool is reusable across wait() calls, single-threaded parallelFor
 * stays inline and ordered, and job exceptions surface to the caller.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hh"

using namespace gmlake;

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitRethrowsJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("job failed"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed; the pool keeps working.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(hits.size(), 8,
                [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(16, 1,
                [&order](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesFirstException)
{
    EXPECT_THROW(
        parallelFor(64, 4,
                    [](std::size_t i) {
                        if (i == 13)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
}

TEST(ParallelFor, HandlesEmptyAndSingleItem)
{
    int calls = 0;
    parallelFor(0, 4, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}
