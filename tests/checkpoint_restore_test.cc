/**
 * @file
 * Checkpoint/restore equivalence: a run split at a virtual-time
 * threshold — warmup replay, Allocator::saveState(), restore into a
 * fresh device + allocator, seeded tail replay — must leave final
 * state bit-identical to the uninterrupted run, for every allocator
 * kind. This is the invariant the sweep harness (sim/sweep.hh)
 * builds on: a warm-started sweep point is exactly a full re-replay,
 * minus the shared prefix's wall time.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/allocator.hh"
#include "alloc/checkpoint.hh"
#include "alloc/snapshot.hh"
#include "core/gmlake_allocator.hh"
#include "sim/runner.hh"
#include "sim/session.hh"
#include "sim/sweep.hh"
#include "support/units.hh"
#include "vmm/fault_injector.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::sim;

namespace
{

// ---------------------------------------------- final-state digest

void
fnv(std::uint64_t &hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
}

/**
 * FNV-1a over everything deterministic the run leaves behind: the
 * allocator's accounting, the device clock and simulated API
 * counters, the largest free physical extent, and the full block
 * inventory. Host wall-time counters (vmmWallNs) and
 * simulator-introspection counters (snapshotPublishes) are excluded
 * — they measure the simulator, not the simulation.
 */
std::uint64_t
finalStateDigest(const alloc::Allocator &allocator,
                 const vmm::Device &device)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto stats = allocator.stats().capture();
    fnv(hash, stats.active);
    fnv(hash, stats.reserved);
    fnv(hash, stats.peakActive);
    fnv(hash, stats.peakReserved);
    fnv(hash, stats.allocCount);
    fnv(hash, stats.freeCount);

    fnv(hash, device.now());
    fnv(hash, device.largestFreeExtent());
    const auto &c = device.counters();
    fnv(hash, c.addressReserve);
    fnv(hash, c.addressFree);
    fnv(hash, c.create);
    fnv(hash, c.release);
    fnv(hash, c.map);
    fnv(hash, c.unmap);
    fnv(hash, c.setAccess);
    fnv(hash, c.mallocNative);
    fnv(hash, c.freeNative);
    fnv(hash, c.copyStallNs);
    fnv(hash, c.apiTime.load(std::memory_order_relaxed));

    const alloc::MemorySnapshot snap = allocator.snapshot();
    fnv(hash, snap.activeBytes);
    fnv(hash, snap.reservedBytes);
    fnv(hash, snap.regions.size());
    for (const alloc::RegionSnapshot &region : snap.regions) {
        for (const char ch : region.kind)
            fnv(hash, static_cast<std::uint64_t>(ch));
        fnv(hash, region.base);
        fnv(hash, region.size);
        fnv(hash, region.blocks.size());
        for (const alloc::BlockSnapshot &block : region.blocks) {
            fnv(hash, block.addr);
            fnv(hash, block.size);
            fnv(hash, block.allocated ? 1 : 0);
            fnv(hash, block.stream);
        }
    }
    return hash;
}

// --------------------------------------------------- run harnesses

/** The straight run: every session replayed start to finish. */
std::uint64_t
straightDigest(const SweepScenario &scenario, AllocatorKind kind)
{
    vmm::Device device(scenario.device);
    const auto allocator =
        makeAllocator(kind, device, scenario.base);
    EngineOptions options;
    options.recordSeries = false;
    SimEngine engine(*allocator, device, options);
    for (std::size_t i = 0; i < scenario.traces.size(); ++i) {
        engine.addSession(Session(scenario.sessionNames[i],
                                  &scenario.traces[i],
                                  scenario.startTimes[i]));
    }
    engine.run();
    return finalStateDigest(*allocator, device);
}

struct WarmupCapture
{
    alloc::Checkpoint checkpoint;
    std::shared_ptr<const ResumeState> resume;
    bool anyOom = false;
};

WarmupCapture
runWarmup(const SweepScenario &scenario, AllocatorKind kind,
          const std::vector<workload::Trace> &warmupTraces)
{
    vmm::Device device(scenario.device);
    const auto allocator =
        makeAllocator(kind, device, scenario.base);
    EngineOptions options;
    options.recordSeries = false;
    options.captureResume = true;
    SimEngine engine(*allocator, device, options);
    for (std::size_t i = 0; i < warmupTraces.size(); ++i) {
        engine.addSession(Session(scenario.sessionNames[i],
                                  &warmupTraces[i],
                                  scenario.startTimes[i]));
    }
    const MultiRunResult multi = engine.run();
    EXPECT_NE(multi.resume, nullptr);
    return WarmupCapture{allocator->saveState(), multi.resume,
                         multi.anyOom()};
}

/**
 * Restore @p warmup into @p allocator (fresh or dirty) and replay
 * the tail on @p device.
 */
std::uint64_t
restoredTailDigest(const SweepScenario &scenario,
                   const std::vector<workload::Trace> &tailTraces,
                   const WarmupCapture &warmup,
                   alloc::Allocator &allocator, vmm::Device &device)
{
    allocator.restoreState(warmup.checkpoint);
    EngineOptions options;
    options.recordSeries = false;
    options.startFrontier = warmup.resume->frontier;
    SimEngine engine(allocator, device, options);
    for (std::size_t i = 0; i < tailTraces.size(); ++i) {
        engine.addSession(
            Session(scenario.sessionNames[i], &tailTraces[i]));
        engine.seedSession(i, warmup.resume->sessions[i]);
    }
    engine.run();
    return finalStateDigest(allocator, device);
}

std::uint64_t
splitDigest(const SweepScenario &scenario, AllocatorKind kind)
{
    std::vector<workload::Trace> warmupTraces;
    std::vector<workload::Trace> tailTraces;
    for (std::size_t i = 0; i < scenario.traces.size(); ++i) {
        auto [head, tail] =
            splitTraceAt(scenario.traces[i], scenario.startTimes[i],
                         scenario.splitTime);
        warmupTraces.push_back(std::move(head));
        tailTraces.push_back(std::move(tail));
    }
    const WarmupCapture warmup =
        runWarmup(scenario, kind, warmupTraces);
    vmm::Device device(scenario.device);
    const auto allocator =
        makeAllocator(kind, device, scenario.base);
    return restoredTailDigest(scenario, tailTraces, warmup,
                              *allocator, device);
}

// ------------------------------------------------------------ tests

/**
 * The core equivalence, for every allocator kind: checkpoint at the
 * split, restore into a fresh allocator, replay the tail — final
 * state digests match the uninterrupted run bit for bit.
 */
TEST(CheckpointRestore, SplitRunMatchesStraightRunAllKinds)
{
    const SweepScenario scenario =
        buildSweepScenario("smoke", 42, 2);
    for (const AllocatorKind kind : allAllocatorKinds()) {
        EXPECT_EQ(straightDigest(scenario, kind),
                  splitDigest(scenario, kind))
            << "allocator kind: " << allocatorKindName(kind);
    }
}

/** A different seed and a later split keep the equivalence. */
TEST(CheckpointRestore, EquivalenceHoldsAcrossSeedsAndSplits)
{
    for (const std::uint64_t seed : {7ULL, 1234ULL}) {
        SweepScenario scenario =
            buildSweepScenario("smoke", seed, 2);
        scenario.splitTime = scenario.splitTime / 3;
        for (const AllocatorKind kind :
             {AllocatorKind::gmlake, AllocatorKind::caching}) {
            EXPECT_EQ(straightDigest(scenario, kind),
                      splitDigest(scenario, kind))
                << "seed " << seed << ", kind "
                << allocatorKindName(kind);
        }
    }
}

/**
 * One checkpoint, many restores: the sweep restores the same
 * immutable Checkpoint into every point's allocator. Two restores +
 * tail replays from one capture must agree with each other and with
 * the straight run.
 */
TEST(CheckpointRestore, DoubleRestoreFromOneCheckpoint)
{
    const SweepScenario scenario =
        buildSweepScenario("smoke", 42, 2);
    std::vector<workload::Trace> warmupTraces;
    std::vector<workload::Trace> tailTraces;
    for (std::size_t i = 0; i < scenario.traces.size(); ++i) {
        auto [head, tail] =
            splitTraceAt(scenario.traces[i], scenario.startTimes[i],
                         scenario.splitTime);
        warmupTraces.push_back(std::move(head));
        tailTraces.push_back(std::move(tail));
    }
    const WarmupCapture warmup =
        runWarmup(scenario, AllocatorKind::gmlake, warmupTraces);

    std::uint64_t digests[2];
    for (auto &digest : digests) {
        vmm::Device device(scenario.device);
        const auto allocator = makeAllocator(
            AllocatorKind::gmlake, device, scenario.base);
        digest = restoredTailDigest(scenario, tailTraces, warmup,
                                    *allocator, device);
    }
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0],
              straightDigest(scenario, AllocatorKind::gmlake));
}

/**
 * Restoring into a *dirty* allocator (one that already replayed
 * unrelated work) must wipe its state wholesale: the tail digest
 * matches the fresh-restore digest exactly.
 */
TEST(CheckpointRestore, RestoreIntoDirtyAllocator)
{
    const SweepScenario scenario =
        buildSweepScenario("smoke", 42, 2);
    std::vector<workload::Trace> warmupTraces;
    std::vector<workload::Trace> tailTraces;
    for (std::size_t i = 0; i < scenario.traces.size(); ++i) {
        auto [head, tail] =
            splitTraceAt(scenario.traces[i], scenario.startTimes[i],
                         scenario.splitTime);
        warmupTraces.push_back(std::move(head));
        tailTraces.push_back(std::move(tail));
    }
    const WarmupCapture warmup =
        runWarmup(scenario, AllocatorKind::gmlake, warmupTraces);

    vmm::Device freshDevice(scenario.device);
    const auto fresh = makeAllocator(AllocatorKind::gmlake,
                                     freshDevice, scenario.base);
    const std::uint64_t freshDigest = restoredTailDigest(
        scenario, tailTraces, warmup, *fresh, freshDevice);

    // Dirty the second allocator with an unrelated replay first;
    // restoreState must replace every trace of it.
    vmm::Device dirtyDevice(scenario.device);
    const auto dirty = makeAllocator(AllocatorKind::gmlake,
                                     dirtyDevice, scenario.base);
    {
        const SweepScenario other =
            buildSweepScenario("smoke", 99, 2);
        SimEngine engine(*dirty, dirtyDevice);
        engine.addSession(
            Session("noise", &other.traces[0], 0));
        engine.run();
    }
    EXPECT_EQ(freshDigest,
              restoredTailDigest(scenario, tailTraces, warmup,
                                 *dirty, dirtyDevice));
}

/**
 * A checkpoint taken after a tenant OOM-killed during the warmup is
 * still resumable: the dead session is seeded dead (replays
 * nothing), survivors replay on, and the split run stays
 * bit-identical to the straight run in which the same tenant dies
 * at the same instant.
 */
TEST(CheckpointRestore, RestoreAfterWarmupOom)
{
    SweepScenario scenario = buildSweepScenario("smoke", 42, 2);
    // Squeeze the device until a tenant dies inside the warmup
    // prefix (both tenants are ~7 GiB peak on 16 GiB by default).
    scenario.device.capacity = 5_GiB;

    std::vector<workload::Trace> warmupTraces;
    std::vector<workload::Trace> tailTraces;
    for (std::size_t i = 0; i < scenario.traces.size(); ++i) {
        auto [head, tail] =
            splitTraceAt(scenario.traces[i], scenario.startTimes[i],
                         scenario.splitTime);
        warmupTraces.push_back(std::move(head));
        tailTraces.push_back(std::move(tail));
    }
    const WarmupCapture warmup =
        runWarmup(scenario, AllocatorKind::gmlake, warmupTraces);
    ASSERT_TRUE(warmup.anyOom)
        << "expected a warmup-phase OOM at 5 GiB; adjust capacity";
    bool anyDead = false;
    for (const SessionSeed &seed : warmup.resume->sessions)
        anyDead = anyDead || seed.dead;
    ASSERT_TRUE(anyDead);

    vmm::Device device(scenario.device);
    const auto allocator = makeAllocator(AllocatorKind::gmlake,
                                         device, scenario.base);
    EXPECT_EQ(straightDigest(scenario, AllocatorKind::gmlake),
              restoredTailDigest(scenario, tailTraces, warmup,
                                 *allocator, device));
}

/**
 * Fault-injection recovery through a checkpoint: the checkpoint is
 * taken just before an injected device fault makes an allocation
 * fail (the fault plan defeats the reclaim-ladder retry too), and
 * restoring it — after clearing the injector — replays to a state
 * bit-identical to a run that never saw the fault.
 */
TEST(CheckpointRestore, RestoreFromCheckpointTakenBeforeInjectedFault)
{
    vmm::DeviceConfig devCfg;
    devCfg.capacity = 256_MiB;
    devCfg.granularity = 2_MiB;
    core::GMLakeConfig lakeCfg;
    lakeCfg.nearMatchTolerance = 0.0;
    lakeCfg.fragLimit = 2_MiB;

    // Warm state both runs share: one live block, one cached block.
    const auto warm = [&](alloc::Allocator &allocator) {
        const auto held = allocator.allocate(8_MiB);
        const auto cached = allocator.allocate(8_MiB);
        EXPECT_TRUE(held.ok() && cached.ok());
        EXPECT_TRUE(allocator.deallocate(cached->id).ok());
        return held->id;
    };

    // Control: the fault never happens.
    vmm::Device controlDevice(devCfg);
    core::GMLakeAllocator control(controlDevice, lakeCfg);
    warm(control);
    ASSERT_TRUE(control.allocate(32_MiB).ok());
    const std::uint64_t cleanDigest =
        finalStateDigest(control, controlDevice);

    // Faulted run: checkpoint, then both memCreate attempts of the
    // 32 MiB allocation fail (ordinal 1 on the first try, ordinal 2
    // on the post-releaseCached retry), so the allocation fails for
    // real and the reclaim ladder empties the cache on the way.
    vmm::Device device(devCfg);
    core::GMLakeAllocator lake(device, lakeCfg);
    warm(lake);
    const alloc::Checkpoint checkpoint = lake.saveState();

    vmm::FaultPlan plan;
    plan.rule(vmm::FaultApi::memCreate).nthCalls = {1, 2};
    plan.rule(vmm::FaultApi::memCreate).code = Errc::outOfMemory;
    device.installFaultInjector(std::move(plan), 17);
    const auto faulted = lake.allocate(32_MiB);
    ASSERT_FALSE(faulted.ok());
    EXPECT_EQ(faulted.error().code, Errc::outOfMemory);
    lake.auditInvariants();

    // Recovery: drop the injector, restore the pre-fault checkpoint,
    // and redo the allocation — indistinguishable from the control.
    device.clearFaultInjector();
    lake.restoreState(checkpoint);
    lake.auditInvariants();
    ASSERT_TRUE(lake.allocate(32_MiB).ok());
    EXPECT_EQ(finalStateDigest(lake, device), cleanDigest);
}

} // namespace
