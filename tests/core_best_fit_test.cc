/**
 * @file
 * Tests for Algorithm 1 (BestFit): state classification, candidate
 * selection, the fragmentation limit, and the exact-sum swap.
 * Includes a parameterized property sweep over random pools.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/best_fit.hh"
#include "support/rng.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::literals;
using core::bestFit;
using core::FitState;

namespace
{
constexpr Bytes kNoLimit = 0;
} // namespace

TEST(BestFit, ExactMatchPrefersSBlock)
{
    const auto r = bestFit(8_MiB, {8_MiB}, {8_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::exactMatch);
    EXPECT_TRUE(r.useSBlock);
    EXPECT_EQ(r.sIndex, 0u);
}

TEST(BestFit, ExactMatchOnPBlockWhenNoSBlock)
{
    const auto r = bestFit(8_MiB, {16_MiB}, {10_MiB, 8_MiB, 4_MiB},
                           kNoLimit);
    EXPECT_EQ(r.state, FitState::exactMatch);
    EXPECT_FALSE(r.useSBlock);
    ASSERT_EQ(r.pIndices.size(), 1u);
    EXPECT_EQ(r.pIndices[0], 1u);
}

TEST(BestFit, SingleBlockPicksSmallestSufficient)
{
    const auto r =
        bestFit(6_MiB, {}, {20_MiB, 12_MiB, 10_MiB, 4_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::singleBlock);
    ASSERT_EQ(r.pIndices.size(), 1u);
    EXPECT_EQ(r.pIndices[0], 2u); // the 10 MiB block
    EXPECT_EQ(r.candidateBytes, 10_MiB);
}

TEST(BestFit, MultiBlocksAccumulatesGreedily)
{
    const auto r = bestFit(10_MiB, {}, {6_MiB, 4_MiB, 2_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::multiBlocks);
    ASSERT_EQ(r.pIndices.size(), 2u);
    EXPECT_EQ(r.pIndices[0], 0u);
    EXPECT_EQ(r.pIndices[1], 1u);
    EXPECT_EQ(r.candidateBytes, 10_MiB);
}

TEST(BestFit, InsufficientReturnsAllUsableCandidates)
{
    const auto r = bestFit(20_MiB, {}, {6_MiB, 4_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::insufficient);
    EXPECT_EQ(r.pIndices.size(), 2u);
    EXPECT_EQ(r.candidateBytes, 10_MiB);
}

TEST(BestFit, EmptyPoolsAreInsufficient)
{
    const auto r = bestFit(2_MiB, {}, {}, kNoLimit);
    EXPECT_EQ(r.state, FitState::insufficient);
    EXPECT_TRUE(r.pIndices.empty());
}

TEST(BestFit, SBlockNeverUsedForNonExactStates)
{
    // A larger sBlock exists but only pBlocks may serve S2/S3.
    const auto r = bestFit(6_MiB, {32_MiB}, {4_MiB, 4_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::multiBlocks);
}

TEST(BestFit, FragLimitSkipsSmallCandidates)
{
    // 4 MiB blocks are below the 8 MiB limit: not stitchable.
    const auto r = bestFit(12_MiB, {},
                           {8_MiB, 4_MiB, 4_MiB, 4_MiB}, 8_MiB);
    // Only the 8 MiB block qualifies -> insufficient.
    EXPECT_EQ(r.state, FitState::insufficient);
    EXPECT_EQ(r.candidateBytes, 8_MiB);
    ASSERT_EQ(r.pIndices.size(), 1u);
    EXPECT_EQ(r.pIndices[0], 0u);
}

TEST(BestFit, FragLimitStillAllowsExactMatch)
{
    const auto r = bestFit(4_MiB, {}, {4_MiB}, 8_MiB);
    EXPECT_EQ(r.state, FitState::exactMatch);
}

TEST(BestFit, ExactSumSwapAvoidsOvershoot)
{
    // Greedy picks 6+4=10 for an 8 MiB request (overshoot 2); a
    // 2 MiB block completes 6+2=8 exactly and must be swapped in.
    const auto r = bestFit(8_MiB, {}, {6_MiB, 4_MiB, 2_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::multiBlocks);
    ASSERT_EQ(r.pIndices.size(), 2u);
    EXPECT_EQ(r.pIndices[0], 0u);
    EXPECT_EQ(r.pIndices[1], 2u); // swapped from index 1 to index 2
    EXPECT_EQ(r.candidateBytes, 8_MiB);
}

TEST(BestFit, SingleBlockBeatsAccumulation)
{
    // 10 > 8: a single block exists, S2 wins over stitching smaller.
    const auto r = bestFit(8_MiB, {}, {10_MiB, 6_MiB, 4_MiB}, kNoLimit);
    EXPECT_EQ(r.state, FitState::singleBlock);
    EXPECT_EQ(r.candidateBytes, 10_MiB);
}

TEST(BestFit, UnsortedInputPanics)
{
    EXPECT_THROW(bestFit(8_MiB, {}, {4_MiB, 6_MiB}, kNoLimit),
                 std::logic_error);
}

// ------------------------------------------------- property sweep

struct SweepParam
{
    std::uint64_t seed;
    Bytes fragLimit;
};

class BestFitSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(BestFitSweep, InvariantsHoldOnRandomPools)
{
    Rng rng(GetParam().seed);
    const Bytes fragLimit = GetParam().fragLimit;

    for (int round = 0; round < 200; ++round) {
        std::vector<Bytes> pSizes;
        const int n = static_cast<int>(rng.uniformInt(0, 24));
        for (int i = 0; i < n; ++i)
            pSizes.push_back(2_MiB * rng.uniformInt(1, 64));
        std::sort(pSizes.rbegin(), pSizes.rend());

        std::vector<Bytes> sSizes;
        const int m = static_cast<int>(rng.uniformInt(0, 8));
        for (int i = 0; i < m; ++i)
            sSizes.push_back(2_MiB * rng.uniformInt(1, 64));
        std::sort(sSizes.rbegin(), sSizes.rend());

        const Bytes want = 2_MiB * rng.uniformInt(1, 96);
        const auto r = bestFit(want, sSizes, pSizes, fragLimit);

        const Bytes usable = std::accumulate(
            pSizes.begin(), pSizes.end(), Bytes{0},
            [&](Bytes acc, Bytes s) {
                return acc + ((fragLimit == 0 || s >= fragLimit ||
                               s == want)
                                  ? s
                                  : 0);
            });

        switch (r.state) {
          case FitState::exactMatch:
            if (r.useSBlock) {
                EXPECT_EQ(sSizes[r.sIndex], want);
            } else {
                ASSERT_EQ(r.pIndices.size(), 1u);
                EXPECT_EQ(pSizes[r.pIndices[0]], want);
            }
            break;
          case FitState::singleBlock:
            ASSERT_EQ(r.pIndices.size(), 1u);
            EXPECT_GT(pSizes[r.pIndices[0]], want);
            // No exact pBlock may exist in this state.
            EXPECT_EQ(std::count(pSizes.begin(), pSizes.end(), want),
                      0);
            break;
          case FitState::multiBlocks: {
            Bytes sum = 0;
            std::vector<std::size_t> seen;
            for (std::size_t idx : r.pIndices) {
                sum += pSizes[idx];
                EXPECT_EQ(std::count(seen.begin(), seen.end(), idx),
                          0) << "duplicate candidate";
                seen.push_back(idx);
                EXPECT_LT(pSizes[idx], want);
            }
            EXPECT_EQ(sum, r.candidateBytes);
            EXPECT_GE(sum, want);
            break;
          }
          case FitState::insufficient:
            EXPECT_LT(r.candidateBytes, want);
            // The candidates really are everything usable.
            EXPECT_LE(r.candidateBytes, usable);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BestFitSweep,
    ::testing::Values(SweepParam{1, 0}, SweepParam{2, 0},
                      SweepParam{3, 8_MiB}, SweepParam{4, 8_MiB},
                      SweepParam{5, 32_MiB}, SweepParam{6, 2_MiB},
                      SweepParam{7, 128_MiB}, SweepParam{8, 0}));
