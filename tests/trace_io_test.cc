/**
 * @file
 * Trace (de)serialization tests: save/load round-trips preserve every
 * event field (stream ids, iteration marks included), v1 files still
 * load, and malformed files are rejected with a diagnostic instead of
 * being replayed half-parsed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/logging.hh"
#include "support/units.hh"
#include "workload/trace.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::workload;

namespace
{

Trace
richTrace()
{
    TraceBuilder tb;
    tb.iterationMark();
    const auto a = tb.alloc(3_MiB, 1);
    const auto b = tb.alloc(512_KiB, 2);
    tb.compute(1'234'567);
    tb.streamSync(2);
    tb.free(b);
    tb.streamSync(kAnyStream);
    tb.iterationMark();
    const auto c = tb.alloc(7_MiB);
    tb.free(a);
    tb.free(c);
    return tb.take();
}

Trace
roundTrip(const Trace &trace)
{
    std::stringstream buffer;
    trace.save(buffer);
    return Trace::load(buffer);
}

} // namespace

TEST(TraceIo, RoundTripPreservesEvents)
{
    const Trace original = richTrace();
    const Trace loaded = roundTrip(original);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const Event &want = original.events()[i];
        const Event &got = loaded.events()[i];
        EXPECT_EQ(got.kind, want.kind) << "event " << i;
        EXPECT_EQ(got.tensor, want.tensor) << "event " << i;
        EXPECT_EQ(got.bytes, want.bytes) << "event " << i;
        EXPECT_EQ(got.computeNs, want.computeNs) << "event " << i;
        EXPECT_EQ(got.stream, want.stream) << "event " << i;
    }
}

TEST(TraceIo, RoundTripPreservesStats)
{
    const Trace original = richTrace();
    const Trace loaded = roundTrip(original);

    EXPECT_EQ(loaded.stats().allocCount, original.stats().allocCount);
    EXPECT_EQ(loaded.stats().totalAllocBytes,
              original.stats().totalAllocBytes);
    EXPECT_EQ(loaded.stats().maxAllocBytes,
              original.stats().maxAllocBytes);
    EXPECT_EQ(loaded.stats().iterations,
              original.stats().iterations);
}

TEST(TraceIo, RoundTripPreservesTouchAndPrefetch)
{
    TraceBuilder tb;
    const auto a = tb.alloc(4_MiB, 1);
    tb.prefetch(a);
    tb.compute(1000);
    tb.touch(a);
    tb.free(a);
    const Trace loaded = roundTrip(tb.take());
    ASSERT_EQ(loaded.size(), 5u);
    EXPECT_EQ(loaded.events()[1].kind, EventKind::prefetch);
    EXPECT_EQ(loaded.events()[1].tensor, a);
    EXPECT_EQ(loaded.events()[3].kind, EventKind::touch);
    EXPECT_EQ(loaded.events()[3].tensor, a);
}

TEST(TraceIo, V2FilesStillLoad)
{
    std::istringstream in(
        "gmlake-trace-v2 3\na 1 2097152 2\nc 5\nf 1\n");
    const Trace trace = Trace::load(in);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.events()[0].stream, 2u);
}

TEST(TraceIo, V1FilesLoadWithDefaultStream)
{
    std::istringstream in(
        "gmlake-trace-v1 3\na 1 1048576\nc 5\nf 1\n");
    const Trace trace = Trace::load(in);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.events()[0].kind, EventKind::alloc);
    EXPECT_EQ(trace.events()[0].stream, kDefaultStream);
    EXPECT_EQ(trace.events()[1].computeNs, 5);
    EXPECT_EQ(trace.events()[2].kind, EventKind::free);
}

TEST(TraceIo, RejectsBadHeader)
{
    std::istringstream in("not-a-trace 2\na 1 64\nf 1\n");
    EXPECT_THROW(Trace::load(in), FatalError);
}

TEST(TraceIo, RejectsUnknownTag)
{
    std::istringstream in("gmlake-trace-v2 1\nz 1\n");
    EXPECT_THROW(Trace::load(in), FatalError);
}

TEST(TraceIo, RejectsTruncatedFile)
{
    // Header promises three events, the file holds one.
    std::istringstream in("gmlake-trace-v2 3\na 1 64 0\n");
    EXPECT_THROW(Trace::load(in), FatalError);
}

TEST(TraceIo, RejectsDoubleAllocation)
{
    // Well-formed syntax, broken semantics: tensor 1 allocated
    // twice. validate() treats that as corruption.
    std::istringstream in(
        "gmlake-trace-v2 2\na 1 64 0\na 1 64 0\n");
    EXPECT_THROW(Trace::load(in), PanicError);
}

TEST(TraceIo, RejectsFreeOfUnknownTensor)
{
    std::istringstream in("gmlake-trace-v2 1\nf 7\n");
    EXPECT_THROW(Trace::load(in), PanicError);
}

TEST(TraceIo, RejectsZeroByteAllocation)
{
    std::istringstream in("gmlake-trace-v2 1\na 1 0 0\n");
    EXPECT_THROW(Trace::load(in), PanicError);
}
