/**
 * @file
 * Physical memory manager tests: capacity accounting, granularity
 * checks, mapping refcounts.
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/phys_memory.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::PhysMemory;

TEST(PhysMemory, CreateAndRelease)
{
    PhysMemory phys(16_MiB, 2_MiB);
    const auto h = phys.create(4_MiB);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(phys.inUse(), 4_MiB);
    EXPECT_EQ(phys.available(), 12_MiB);
    EXPECT_TRUE(phys.isLive(*h));
    EXPECT_TRUE(phys.release(*h).ok());
    EXPECT_EQ(phys.inUse(), 0u);
    EXPECT_FALSE(phys.isLive(*h));
}

TEST(PhysMemory, PeakTracksHighWaterMark)
{
    PhysMemory phys(16_MiB, 2_MiB);
    const auto a = phys.create(8_MiB);
    const auto b = phys.create(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(phys.release(*a).ok());
    EXPECT_EQ(phys.inUse(), 4_MiB);
    EXPECT_EQ(phys.peakInUse(), 12_MiB);
}

TEST(PhysMemory, RejectsUnalignedSize)
{
    PhysMemory phys(16_MiB, 2_MiB);
    EXPECT_EQ(phys.create(3_MiB).code(), Errc::invalidValue);
    EXPECT_EQ(phys.create(0).code(), Errc::invalidValue);
}

TEST(PhysMemory, OutOfMemoryAtCapacity)
{
    PhysMemory phys(8_MiB, 2_MiB);
    const auto a = phys.create(6_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(phys.create(4_MiB).code(), Errc::outOfMemory);
    // Exactly filling the device is allowed.
    EXPECT_TRUE(phys.create(2_MiB).ok());
}

TEST(PhysMemory, ReleaseUnknownHandleFails)
{
    PhysMemory phys(8_MiB, 2_MiB);
    EXPECT_EQ(phys.release(1234).code(), Errc::invalidValue);
}

TEST(PhysMemory, MapRefsBlockRelease)
{
    PhysMemory phys(8_MiB, 2_MiB);
    const auto h = phys.create(2_MiB);
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(phys.addMapRef(*h).ok());
    EXPECT_TRUE(phys.addMapRef(*h).ok());
    EXPECT_EQ(phys.mapRefs(*h), 2u);
    EXPECT_EQ(phys.release(*h).code(), Errc::handleInUse);
    EXPECT_TRUE(phys.dropMapRef(*h).ok());
    EXPECT_EQ(phys.release(*h).code(), Errc::handleInUse);
    EXPECT_TRUE(phys.dropMapRef(*h).ok());
    EXPECT_TRUE(phys.release(*h).ok());
}

TEST(PhysMemory, DropRefWithoutMapFails)
{
    PhysMemory phys(8_MiB, 2_MiB);
    const auto h = phys.create(2_MiB);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(phys.dropMapRef(*h).code(), Errc::notMapped);
    EXPECT_EQ(phys.dropMapRef(999).code(), Errc::invalidValue);
}

TEST(PhysMemory, SizeOf)
{
    PhysMemory phys(8_MiB, 2_MiB);
    const auto h = phys.create(6_MiB);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(*phys.sizeOf(*h), 6_MiB);
    EXPECT_EQ(phys.sizeOf(77).code(), Errc::invalidValue);
}

TEST(PhysMemory, HandlesAreUnique)
{
    PhysMemory phys(8_MiB, 2_MiB);
    const auto a = phys.create(2_MiB);
    const auto b = phys.create(2_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NE(*a, *b);
    // Released ids are not recycled.
    EXPECT_TRUE(phys.release(*a).ok());
    const auto c = phys.create(2_MiB);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(*c, *a);
}
