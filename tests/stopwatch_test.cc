/**
 * @file
 * Tests for the host-wallclock measurement layer: the monotonic
 * stopwatch, the latency histogram's exact aggregates and
 * approximate quantiles, and the wallclock fields a replay attaches
 * to its RunResult. Includes a stress-allocator smoke run (the
 * scenario whose perf trajectory the measurements exist for).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/recorder.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "support/stopwatch.hh"
#include "support/units.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

TEST(Stopwatch, IsMonotonic)
{
    const std::uint64_t a = Stopwatch::nowNs();
    const std::uint64_t b = Stopwatch::nowNs();
    EXPECT_GE(b, a);

    Stopwatch watch;
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 10000; ++i)
        sink = sink + i;
    EXPECT_GT(watch.elapsedNs(), 0u);
}

TEST(Stopwatch, ResetRestartsTheWindow)
{
    // Load-immune formulation: after reset(), the watch's start is
    // later than `control`'s, so sampling the watch first must read
    // less elapsed time than the earlier-started control — however
    // long the scheduler stalls us in between.
    Stopwatch watch;
    const std::uint64_t t0 = Stopwatch::nowNs();
    while (Stopwatch::nowNs() - t0 < 2'000'000) {
        // burn >= 2 ms of real time on the construction window
    }
    const Stopwatch control;
    watch.reset();
    const std::uint64_t resetElapsed = watch.elapsedNs();
    const std::uint64_t controlElapsed = control.elapsedNs();
    // Holds for any scheduling: a no-op reset would instead report
    // the >= 2 ms burned above, while the control has only existed
    // for the sampling gap. With a working reset the inequality is
    // exact — start(watch) >= start(control), sample(watch) <=
    // sample(control).
    EXPECT_LE(resetElapsed, controlElapsed);
}

TEST(LatencyHistogram, EmptyHistogramIsZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.totalNs(), 0u);
    EXPECT_EQ(h.minNs(), 0u);
    EXPECT_EQ(h.maxNs(), 0u);
    EXPECT_EQ(h.quantileNs(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.meanNs(), 0.0);
}

TEST(LatencyHistogram, ExactAggregates)
{
    LatencyHistogram h;
    h.add(100);
    h.add(300);
    h.add(200);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.totalNs(), 600u);
    EXPECT_EQ(h.minNs(), 100u);
    EXPECT_EQ(h.maxNs(), 300u);
    EXPECT_DOUBLE_EQ(h.meanNs(), 200.0);
}

TEST(LatencyHistogram, BucketsArePowerOfTwoRanges)
{
    LatencyHistogram h;
    h.add(0);    // bucket 0
    h.add(1);    // bucket 1: [1, 2)
    h.add(5);    // bucket 3: [4, 8)
    h.add(7);    // bucket 3
    h.add(1024); // bucket 11: [1024, 2048)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.bucketCount(11), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
}

TEST(LatencyHistogram, QuantilesAreBucketAccurate)
{
    // 90 samples near 1 us, 10 near 1 ms: p50 must land in the fast
    // bucket, p99 in the slow one — the log2 buckets guarantee
    // 2x accuracy, which is what the p50/p99 reporting needs.
    LatencyHistogram h;
    for (int i = 0; i < 90; ++i)
        h.add(1000 + i);
    for (int i = 0; i < 10; ++i)
        h.add(1'000'000 + i);
    const std::uint64_t p50 = h.quantileNs(0.5);
    const std::uint64_t p99 = h.quantileNs(0.99);
    EXPECT_GE(p50, 1000u);
    EXPECT_LT(p50, 2048u);
    EXPECT_GE(p99, 524288u); // within the [2^19, 2^20) bucket
    EXPECT_LE(p99, 1'048'576u);
    EXPECT_LE(h.quantileNs(0.0), 2048u);
    EXPECT_EQ(h.quantileNs(1.0), h.maxNs());
}

TEST(LatencyHistogram, QuantileClampsToObservedRange)
{
    LatencyHistogram h;
    h.add(1000);
    // A single sample: every quantile is that sample (the bucket
    // interpolation must clamp to min/max).
    EXPECT_EQ(h.quantileNs(0.0), 1000u);
    EXPECT_EQ(h.quantileNs(0.5), 1000u);
    EXPECT_EQ(h.quantileNs(1.0), 1000u);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    // merge() is the aggregation path for per-thread histograms:
    // folding two disjoint recordings must equal recording every
    // sample into one histogram — aggregates, buckets, and the
    // quantiles derived from them.
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 90; ++i) {
        a.add(1000 + i);
        combined.add(1000 + i);
    }
    for (int i = 0; i < 10; ++i) {
        b.add(1'000'000 + i);
        combined.add(1'000'000 + i);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.totalNs(), combined.totalNs());
    EXPECT_EQ(a.minNs(), combined.minNs());
    EXPECT_EQ(a.maxNs(), combined.maxNs());
    for (int bucket = 0; bucket <= 64; ++bucket)
        EXPECT_EQ(a.bucketCount(bucket), combined.bucketCount(bucket))
            << "bucket " << bucket;
    EXPECT_EQ(a.quantileNs(0.5), combined.quantileNs(0.5));
    EXPECT_EQ(a.quantileNs(0.99), combined.quantileNs(0.99));
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram a, empty;
    a.add(42);
    a.add(4242);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.minNs(), 42u);
    EXPECT_EQ(a.maxNs(), 4242u);

    // Empty absorbing non-empty adopts its min/max (the min of an
    // empty histogram must not poison the merge with zero).
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.minNs(), 42u);
    EXPECT_EQ(empty.maxNs(), 4242u);
}

// ------------------------------------------------ replay wallclock

TEST(RunWallclock, ReplayRecordsAllocationWallTime)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-1.3B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 16;
    cfg.iterations = 2;

    const auto r = sim::runScenario(cfg, sim::AllocatorKind::gmlake);
    ASSERT_FALSE(r.oom);
    ASSERT_GT(r.allocCount, 0u);
    EXPECT_GT(r.allocWallNs, 0u);
    EXPECT_GT(r.runWallNs, 0u);
    EXPECT_GE(r.runWallNs, r.allocWallNs);
    EXPECT_GT(r.allocWallP50Ns, 0u);
    EXPECT_GE(r.allocWallP99Ns, r.allocWallP50Ns);
    // The total is consistent with the per-call quantiles.
    EXPECT_GE(r.allocWallNs, r.allocWallP50Ns);
}

// ---------------------------------------------- stress smoke

TEST(StressAllocator, SmokeRunExercisesDeepPools)
{
    const sim::Experiment *stress =
        sim::findExperiment("stress-allocator");
    ASSERT_NE(stress, nullptr);

    sim::ExperimentOptions options;
    options.iterations = 1;
    std::ostringstream sink;
    sim::ExperimentContext ctx(options, sink);
    stress->run(ctx);

    // Both allocators replayed the full trace.
    ASSERT_EQ(ctx.records().size(), 2u);
    for (const auto &r : ctx.records()) {
        EXPECT_FALSE(r.result.oom) << r.allocator;
        EXPECT_GT(r.result.allocCount, 2000u) << r.allocator;
        EXPECT_GT(r.result.allocWallNs, 0u) << r.allocator;
    }

    // The scenario actually reaches the deep-pool regime: the
    // gmlake run must report hundreds of pBlocks and have stitched.
    auto metric = [&](const char *label,
                      const char *name) -> double {
        for (const auto &m : ctx.metrics()) {
            if (m.label == label && m.name == name)
                return m.value;
        }
        ADD_FAILURE() << "missing metric " << label << "/" << name;
        return 0.0;
    };
    EXPECT_GE(metric("gmlake", "pblocks"), 300.0);
    EXPECT_GT(metric("gmlake", "stitches"), 0.0);
    EXPECT_GT(metric("gmlake", "s3_multi_blocks"), 0.0);
    EXPECT_GT(metric("gmlake", "alloc_wall_ns"), 0.0);
}

// --------------------------------------- histogram merge edge cases

TEST(LatencyHistogram, MergeEmptyWithEmptyStaysEmpty)
{
    LatencyHistogram a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.totalNs(), 0u);
    EXPECT_EQ(a.minNs(), 0u);
    EXPECT_EQ(a.maxNs(), 0u);
    EXPECT_EQ(a.quantileNs(0.5), 0u);
    for (int bucket = 0; bucket <= 64; ++bucket)
        EXPECT_EQ(a.bucketCount(bucket), 0u);
}

TEST(LatencyHistogram, MergeSpansTheFullBucketRange)
{
    // The extreme buckets: a zero-ns sample (bucket 0) and the
    // largest representable one (bucket 64) must survive a merge
    // without the exact extremes drifting.
    LatencyHistogram lo, hi;
    lo.add(0);
    hi.add(~std::uint64_t{0});
    lo.merge(hi);
    EXPECT_EQ(lo.count(), 2u);
    EXPECT_EQ(lo.minNs(), 0u);
    EXPECT_EQ(lo.maxNs(), ~std::uint64_t{0});
    EXPECT_EQ(lo.bucketCount(0), 1u);
    EXPECT_EQ(lo.bucketCount(64), 1u);
    EXPECT_EQ(lo.quantileNs(0.0), 0u);
    EXPECT_EQ(lo.quantileNs(1.0), ~std::uint64_t{0});
}

TEST(LatencyHistogram, MergeIsCommutative)
{
    LatencyHistogram ab1, ab2, b1, a2;
    for (int i = 0; i < 40; ++i) {
        ab1.add(500 + i);
        a2.add(500 + i);
    }
    for (int i = 0; i < 60; ++i) {
        b1.add(70'000 + i);
        ab2.add(70'000 + i);
    }
    ab1.merge(b1); // a ⊕ b
    ab2.merge(a2); // b ⊕ a
    EXPECT_EQ(ab1.count(), ab2.count());
    EXPECT_EQ(ab1.totalNs(), ab2.totalNs());
    EXPECT_EQ(ab1.minNs(), ab2.minNs());
    EXPECT_EQ(ab1.maxNs(), ab2.maxNs());
    for (int bucket = 0; bucket <= 64; ++bucket)
        EXPECT_EQ(ab1.bucketCount(bucket), ab2.bucketCount(bucket));
    EXPECT_EQ(ab1.quantileNs(0.5), ab2.quantileNs(0.5));
    EXPECT_EQ(ab1.quantileNs(0.99), ab2.quantileNs(0.99));
}

TEST(LatencyHistogram, MergedQuantilesRespectTheHalfwayBoundary)
{
    // Exactly half the merged samples in a fast bucket, half in a
    // slow one: quantiles strictly below the boundary must resolve
    // to the fast bucket and strictly above to the slow bucket, no
    // matter which side contributed which half.
    LatencyHistogram fast, slow;
    for (int i = 0; i < 50; ++i)
        fast.add(1000);
    for (int i = 0; i < 50; ++i)
        slow.add(1'000'000);
    fast.merge(slow);
    EXPECT_EQ(fast.count(), 100u);
    EXPECT_LT(fast.quantileNs(0.49), 2048u);
    EXPECT_GE(fast.quantileNs(0.51), 524288u);
}

// --------------------------------------- observability overhead

TEST(StressAllocator, RecorderOverheadIsBounded)
{
    // The observability satellite's perf guard. Two stress-allocator
    // runs: the null-sink run (recorder not installed — every
    // instrumentation site is one atomic load + untaken branch) and
    // a run with a live recorder draining every event. The alloc-path
    // p50 with recording ON must stay within a generous envelope of
    // the null-sink p50; anything past it means recording landed on
    // the allocation hot path rather than beside it. The bound is
    // deliberately loose (5x + 50 us) so CI noise cannot trip it —
    // the honest numbers live in PERFORMANCE.md.
    const sim::Experiment *stress =
        sim::findExperiment("stress-allocator");
    ASSERT_NE(stress, nullptr);

    const auto p50 = [&](obs::Recorder *recorder) {
        sim::ExperimentOptions options;
        options.iterations = 1;
        std::ostringstream sink;
        sim::ExperimentContext ctx(options, sink);
        if (recorder != nullptr) {
            ctx.setRecorder(recorder);
            recorder->activate();
        }
        stress->run(ctx);
        if (recorder != nullptr)
            recorder->deactivate();
        for (const auto &r : ctx.records()) {
            if (r.allocator == "gmlake")
                return r.result.allocWallP50Ns;
        }
        ADD_FAILURE() << "no gmlake record";
        return std::uint64_t{0};
    };

    const std::uint64_t nullSink = p50(nullptr);
    obs::Recorder recorder;
    const std::uint64_t recording = p50(&recorder);
    EXPECT_GT(nullSink, 0u);
    EXPECT_GT(recorder.snapshot().events.size(), 1000u)
        << "recorder saw no events; the guard below is vacuous";
    EXPECT_LE(recording, nullSink * 5 + 50'000u)
        << "recording p50 " << recording << " ns vs null-sink p50 "
        << nullSink << " ns";
}
