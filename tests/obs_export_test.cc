/**
 * @file
 * Exporter tests: the Chrome-trace JSON is structurally valid and
 * carries the expected record kinds; the columnar `.gmo` dump
 * round-trips a snapshot exactly and rejects corrupt or truncated
 * files at open.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export_chrome.hh"
#include "obs/export_columnar.hh"
#include "obs/recorder.hh"
#include "support/logging.hh"

using namespace gmlake;
using namespace gmlake::obs;

namespace
{

/**
 * Minimal recursive-descent JSON acceptor — enough to reject the
 * classic serializer bugs (trailing commas, unbalanced brackets,
 * unescaped strings). CI additionally runs `python -m json.tool`
 * over a real timeline export.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : mText(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return mPos == mText.size();
    }

  private:
    bool
    value()
    {
        if (mPos >= mText.size())
            return false;
        switch (mText[mPos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++mPos; // '{'
        skipWs();
        if (peek() == '}') {
            ++mPos;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++mPos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++mPos;
                continue;
            }
            if (peek() == '}') {
                ++mPos;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++mPos; // '['
        skipWs();
        if (peek() == ']') {
            ++mPos;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++mPos;
                continue;
            }
            if (peek() == ']') {
                ++mPos;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++mPos;
        while (mPos < mText.size()) {
            const char c = mText[mPos];
            if (c == '\\') {
                mPos += 2;
                continue;
            }
            if (c == '"') {
                ++mPos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: must be escaped
            ++mPos;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = mPos;
        if (peek() == '-')
            ++mPos;
        while (mPos < mText.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    mText[mPos])) ||
                mText[mPos] == '.' || mText[mPos] == 'e' ||
                mText[mPos] == 'E' || mText[mPos] == '+' ||
                mText[mPos] == '-'))
            ++mPos;
        return mPos > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p, ++mPos) {
            if (mPos >= mText.size() || mText[mPos] != *p)
                return false;
        }
        return true;
    }

    char
    peek() const
    {
        return mPos < mText.size() ? mText[mPos] : '\0';
    }

    void
    skipWs()
    {
        while (mPos < mText.size() &&
               std::isspace(
                   static_cast<unsigned char>(mText[mPos])))
            ++mPos;
    }

    const std::string &mText;
    std::size_t mPos = 0;
};

/** A snapshot exercising every record kind, run/track table, blob. */
RecorderSnapshot
sampleSnapshot()
{
    Recorder rec;
    rec.beginRun("run-a [gmlake]");
    const std::uint32_t dev = rec.track("device");
    const std::uint32_t mem = rec.track("mem.active");
    rec.span(EvName::devMap, EventCat::device, dev, 100, 50, 2097152,
             0, 1);
    rec.instant(EvName::sessionOom, EventCat::engine, dev, 400, 64,
                32, 16);
    rec.counter(mem, 200, 123456);
    const std::uint64_t members[] = {3, 5, 8};
    Event stitch;
    stitch.simTime = 150;
    stitch.track = dev;
    stitch.name = EvName::stitch;
    stitch.kind = EventKind::instant;
    stitch.cat = EventCat::alloc;
    stitch.a0 = 42;
    rec.emitWithBlob(stitch, members, 3);

    rec.beginRun("run-b \"quoted\\name\"");
    const std::uint32_t dev2 = rec.track("device");
    rec.span(EvName::devUnmap, EventCat::device, dev2, 10, 5);
    return rec.snapshot();
}

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

TEST(ObsExport, ChromeTraceIsValidJson)
{
    const RecorderSnapshot snap = sampleSnapshot();
    std::ostringstream out;
    writeChromeTrace(snap, out);
    const std::string json = out.str();

    EXPECT_TRUE(JsonChecker(json).valid())
        << json.substr(0, 400);
    // Container shape plus one record of each Chrome phase.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("memMap"), std::string::npos);
    EXPECT_NE(json.find("sessionOom"), std::string::npos);
    // Run labels become process names; embedded quotes and
    // backslashes must arrive escaped, not raw.
    EXPECT_NE(json.find("run-a [gmlake]"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\\name\\\""),
              std::string::npos);
}

TEST(ObsExport, ColumnarRoundTripsExactly)
{
    const RecorderSnapshot snap = sampleSnapshot();
    const std::string path = tempPath("obs_roundtrip.gmo");
    writeColumnarTrace(snap, path);
    EXPECT_TRUE(looksLikeObsTrace(path));

    const RecorderSnapshot back = readColumnarTrace(path);
    ASSERT_EQ(back.events.size(), snap.events.size());
    for (std::size_t i = 0; i < snap.events.size(); ++i) {
        const Event &a = snap.events[i];
        const Event &b = back.events[i];
        EXPECT_EQ(a.simTime, b.simTime) << i;
        EXPECT_EQ(a.dur, b.dur) << i;
        EXPECT_EQ(a.a0, b.a0) << i;
        EXPECT_EQ(a.a1, b.a1) << i;
        EXPECT_EQ(a.a2, b.a2) << i;
        EXPECT_EQ(a.seq, b.seq) << i;
        EXPECT_EQ(a.track, b.track) << i;
        EXPECT_EQ(a.blobOff, b.blobOff) << i;
        EXPECT_EQ(a.blobLen, b.blobLen) << i;
        EXPECT_EQ(a.name, b.name) << i;
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.cat, b.cat) << i;
    }
    EXPECT_EQ(back.blob, snap.blob);
    EXPECT_EQ(back.dropped, snap.dropped);
    ASSERT_EQ(back.tracks.size(), snap.tracks.size());
    for (std::size_t i = 0; i < snap.tracks.size(); ++i) {
        EXPECT_EQ(back.tracks[i].name, snap.tracks[i].name);
        EXPECT_EQ(back.tracks[i].run, snap.tracks[i].run);
    }
    ASSERT_EQ(back.runs.size(), snap.runs.size());
    for (std::size_t i = 0; i < snap.runs.size(); ++i)
        EXPECT_EQ(back.runs[i], snap.runs[i]);
    std::filesystem::remove(path);
}

TEST(ObsExport, ColumnarRejectsCorruption)
{
    const RecorderSnapshot snap = sampleSnapshot();
    const std::string path = tempPath("obs_corrupt.gmo");
    writeColumnarTrace(snap, path);

    // Flip one byte in the middle of the chunk payload.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekg(0, std::ios::end);
        const auto size = static_cast<std::streamoff>(f.tellg());
        f.seekp(size / 2);
        char byte = 0;
        f.seekg(size / 2);
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(size / 2);
        f.write(&byte, 1);
    }
    EXPECT_THROW((void)readColumnarTrace(path), FatalError);
    std::filesystem::remove(path);
}

TEST(ObsExport, ColumnarRejectsTruncation)
{
    const RecorderSnapshot snap = sampleSnapshot();
    const std::string path = tempPath("obs_truncated.gmo");
    writeColumnarTrace(snap, path);
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
    EXPECT_THROW((void)readColumnarTrace(path), FatalError);
    std::filesystem::remove(path);
}

TEST(ObsExport, LooksLikeObsTraceRejectsOtherFiles)
{
    const std::string path = tempPath("obs_not_a_trace.bin");
    std::ofstream(path) << "definitely not a trace";
    EXPECT_FALSE(looksLikeObsTrace(path));
    EXPECT_FALSE(looksLikeObsTrace(tempPath("obs_missing.gmo")));
    std::filesystem::remove(path);
}
