/**
 * @file
 * Native allocator tests: direct cudaMalloc/cudaFree with sync
 * penalties, plus stats accounting.
 */

#include <gtest/gtest.h>

#include "alloc/native_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using alloc::NativeAllocator;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 64_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(NativeAllocator, AllocateAndFree)
{
    vmm::Device dev(smallDevice());
    NativeAllocator alloc(dev);
    const auto a = alloc.allocate(5_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->requested, 5_MiB);
    EXPECT_NE(a->addr, kNullAddr);
    EXPECT_EQ(alloc.stats().activeBytes(), 5_MiB);
    EXPECT_EQ(alloc.stats().reservedBytes(), 6_MiB); // granularity
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    EXPECT_EQ(alloc.stats().activeBytes(), 0u);
    EXPECT_EQ(alloc.stats().reservedBytes(), 0u);
    EXPECT_EQ(dev.phys().inUse(), 0u);
}

TEST(NativeAllocator, EveryAllocationHitsTheDevice)
{
    vmm::Device dev(smallDevice());
    NativeAllocator alloc(dev);
    for (int i = 0; i < 5; ++i) {
        const auto a = alloc.allocate(2_MiB);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(alloc.deallocate(a->id).ok());
    }
    // No caching: 5 mallocs and 5 frees reached the device.
    EXPECT_EQ(dev.counters().mallocNative, 5u);
    EXPECT_EQ(dev.counters().freeNative, 5u);
}

TEST(NativeAllocator, OutOfMemoryPropagates)
{
    vmm::Device dev(smallDevice(8_MiB));
    NativeAllocator alloc(dev);
    EXPECT_EQ(alloc.allocate(16_MiB).code(), Errc::outOfMemory);
}

TEST(NativeAllocator, ZeroByteAllocationRejected)
{
    vmm::Device dev(smallDevice());
    NativeAllocator alloc(dev);
    EXPECT_EQ(alloc.allocate(0).code(), Errc::invalidValue);
}

TEST(NativeAllocator, UnknownIdRejected)
{
    vmm::Device dev(smallDevice());
    NativeAllocator alloc(dev);
    EXPECT_EQ(alloc.deallocate(777).code(), Errc::invalidValue);
}

TEST(NativeAllocator, PeaksTrackHighWater)
{
    vmm::Device dev(smallDevice());
    NativeAllocator alloc(dev);
    const auto a = alloc.allocate(8_MiB);
    const auto b = alloc.allocate(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    EXPECT_EQ(alloc.stats().peakActiveBytes(), 12_MiB);
    EXPECT_EQ(alloc.stats().activeBytes(), 4_MiB);
    EXPECT_DOUBLE_EQ(alloc.stats().utilizationRatio(), 1.0);
}
