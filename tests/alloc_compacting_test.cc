/**
 * @file
 * Tests for the compaction-based defragmentation baseline: slab
 * placement, compaction correctness (no overlaps, accounting holds),
 * copy-cost charging, slab draining.
 */

#include <gtest/gtest.h>

#include "alloc/compacting_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using alloc::CompactingAllocator;
using alloc::CompactingConfig;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

CompactingConfig
smallSlabs()
{
    CompactingConfig cfg;
    cfg.slabSize = 32_MiB;
    return cfg;
}

} // namespace

TEST(Compacting, AllocateAndFreeRoundTrip)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    const auto a = allocator.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(allocator.stats().reservedBytes(), 32_MiB);
    EXPECT_EQ(allocator.slabCount(), 1u);
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    EXPECT_EQ(allocator.stats().activeBytes(), 0u);
    allocator.checkConsistency();
}

TEST(Compacting, ReusesGapsFirstFit)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    const auto a = allocator.allocate(10_MiB);
    const auto b = allocator.allocate(10_MiB);
    const auto c = allocator.allocate(10_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(allocator.deallocate(b->id).ok());
    const auto d = allocator.allocate(8_MiB);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->addr, b->addr); // the gap
    EXPECT_EQ(allocator.slabCount(), 1u);
    allocator.checkConsistency();
}

TEST(Compacting, CompactionMergesScatteredSpace)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    // Fill a slab with 8 x 4 MiB, free every other one: 16 MiB free
    // but the largest gap is 4 MiB.
    std::vector<alloc::AllocId> ids;
    for (int i = 0; i < 8; ++i) {
        const auto a = allocator.allocate(4_MiB);
        ASSERT_TRUE(a.ok());
        ids.push_back(a->id);
    }
    for (int i = 0; i < 8; i += 2)
        ASSERT_TRUE(allocator.deallocate(ids[static_cast<std::size_t>(
                        i)]).ok());

    // A 12 MiB request does not fit any gap; compaction makes room
    // without growing a new slab.
    const auto big = allocator.allocate(12_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(allocator.slabCount(), 1u);
    EXPECT_EQ(allocator.compactions(), 1u);
    EXPECT_GT(allocator.bytesMoved(), 0u);
    allocator.checkConsistency();
}

TEST(Compacting, CompactionChargesCopyTime)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    std::vector<alloc::AllocId> ids;
    for (int i = 0; i < 8; ++i) {
        const auto a = allocator.allocate(4_MiB);
        ASSERT_TRUE(a.ok());
        ids.push_back(a->id);
    }
    for (int i = 0; i < 8; i += 2)
        ASSERT_TRUE(allocator.deallocate(ids[static_cast<std::size_t>(
                        i)]).ok());

    const Tick before = dev.now();
    const auto big = allocator.allocate(12_MiB);
    ASSERT_TRUE(big.ok());
    // At least the sync plus the copy of the moved bytes.
    EXPECT_GT(dev.now() - before, 100'000);
}

TEST(Compacting, MigrationDrainsSlabsBackToDevice)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    // Two slabs, each mostly empty after frees.
    std::vector<alloc::AllocId> keep;
    std::vector<alloc::AllocId> drop;
    for (int i = 0; i < 14; ++i) {
        const auto a = allocator.allocate(4_MiB);
        ASSERT_TRUE(a.ok());
        // Keep one block in each slab (8 x 4 MiB fill slab 0).
        ((i == 0 || i == 13) ? keep : drop).push_back(a->id);
    }
    EXPECT_EQ(allocator.slabCount(), 2u);
    for (const auto id : drop)
        ASSERT_TRUE(allocator.deallocate(id).ok());

    // A request larger than any gap triggers compaction; migration
    // packs the two survivors into one slab and the other drains.
    const auto big = allocator.allocate(30_MiB);
    ASSERT_TRUE(big.ok());
    allocator.checkConsistency();
    EXPECT_GE(allocator.compactions(), 1u);
    // All three allocations fit in two slabs after migration.
    EXPECT_LE(allocator.slabCount(), 2u);
}

TEST(Compacting, BigRequestGetsExactSlab)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    const auto big = allocator.allocate(100_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(allocator.stats().reservedBytes(), 100_MiB);
    allocator.checkConsistency();
}

TEST(Compacting, OomWhenDeviceExhausted)
{
    vmm::Device dev(smallDevice(64_MiB));
    CompactingAllocator allocator(dev, smallSlabs());
    const auto a = allocator.allocate(60_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(allocator.allocate(32_MiB).code(), Errc::outOfMemory);
    allocator.checkConsistency();
}

TEST(Compacting, EmptyCacheReleasesIdleSlabs)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    const auto a = allocator.allocate(10_MiB);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    allocator.emptyCache();
    EXPECT_EQ(allocator.slabCount(), 0u);
    EXPECT_EQ(allocator.stats().reservedBytes(), 0u);
    EXPECT_EQ(dev.phys().inUse(), 0u);
}

TEST(Compacting, UnknownIdAndZeroByteRejected)
{
    vmm::Device dev(smallDevice());
    CompactingAllocator allocator(dev, smallSlabs());
    EXPECT_EQ(allocator.deallocate(9).code(), Errc::invalidValue);
    EXPECT_EQ(allocator.allocate(0).code(), Errc::invalidValue);
}

TEST(Compacting, RandomWalkStaysConsistent)
{
    vmm::Device dev(smallDevice(1_GiB));
    CompactingAllocator allocator(dev, smallSlabs());
    std::vector<alloc::AllocId> live;
    std::uint64_t x = 4242;
    auto rnd = [&x]() {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 2500; ++i) {
        if (live.empty() || rnd() % 3 != 0) {
            const auto a =
                allocator.allocate(512 + rnd() % (6_MiB));
            if (!a.ok()) {
                ASSERT_EQ(a.code(), Errc::outOfMemory);
                continue;
            }
            live.push_back(a->id);
        } else {
            const std::size_t idx = rnd() % live.size();
            ASSERT_TRUE(allocator.deallocate(live[idx]).ok());
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
        if (i % 300 == 0)
            allocator.checkConsistency();
    }
    allocator.checkConsistency();
    EXPECT_GE(allocator.stats().reservedBytes(),
              allocator.stats().activeBytes());
}
