/**
 * @file
 * Property test of the extent-based physical memory manager: random
 * create/release sequences are cross-checked op by op against a
 * naive reference model (linear first-fit over an address-sorted
 * hole list). Placement, OOM points, hole structure, and the O(1)
 * aggregates must all agree — the extent tree is an optimization,
 * never a behaviour change. Handle-recycling properties (slot reuse
 * with unique handle values) are asserted on the side.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "support/rng.hh"
#include "support/units.hh"
#include "vmm/extent_map.hh"
#include "vmm/phys_memory.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::FreeExtentMap;
using vmm::PhysMemory;

namespace
{

/** The obviously-correct model: a sorted vector of holes. */
class ReferencePhys
{
  public:
    explicit ReferencePhys(Bytes capacity)
    {
        mHoles.push_back({0, capacity});
    }

    /** First-fit create; nullopt on OOM. Returns the base. */
    std::optional<Bytes>
    create(Bytes size)
    {
        for (std::size_t i = 0; i < mHoles.size(); ++i) {
            if (mHoles[i].size < size)
                continue;
            const Bytes base = mHoles[i].base;
            if (mHoles[i].size == size) {
                mHoles.erase(mHoles.begin() +
                             static_cast<std::ptrdiff_t>(i));
            } else {
                mHoles[i].base += size;
                mHoles[i].size -= size;
            }
            mLive.emplace(base, size);
            return base;
        }
        return std::nullopt;
    }

    void
    release(Bytes base)
    {
        const auto it = mLive.find(base);
        ASSERT_NE(it, mLive.end());
        Bytes size = it->second;
        Bytes at = it->first;
        mLive.erase(it);
        // Merge with neighbours, keep address order.
        std::vector<Hole> merged;
        bool inserted = false;
        for (const Hole &h : mHoles) {
            if (!inserted && h.base > at) {
                merged.push_back({at, size});
                inserted = true;
            }
            merged.push_back(h);
        }
        if (!inserted)
            merged.push_back({at, size});
        mHoles.clear();
        for (const Hole &h : merged) {
            if (!mHoles.empty() &&
                mHoles.back().base + mHoles.back().size == h.base) {
                mHoles.back().size += h.size;
            } else {
                mHoles.push_back(h);
            }
        }
    }

    struct Hole
    {
        Bytes base;
        Bytes size;
    };
    const std::vector<Hole> &holes() const { return mHoles; }

    Bytes
    largestHole() const
    {
        Bytes largest = 0;
        for (const Hole &h : mHoles)
            largest = std::max(largest, h.size);
        return largest;
    }

    std::vector<std::pair<Bytes, Bytes>>
    liveRanges() const
    {
        std::vector<std::pair<Bytes, Bytes>> out(mLive.begin(),
                                                 mLive.end());
        return out;
    }

  private:
    std::vector<Hole> mHoles;
    std::map<Bytes, Bytes> mLive;
};

void
expectInLockstep(const PhysMemory &phys, const ReferencePhys &ref)
{
    // Hole structure: count, largest (the O(1) aggregate), and the
    // exact extents.
    ASSERT_EQ(phys.holeCount(), ref.holes().size());
    ASSERT_EQ(phys.largestHole(), ref.largestHole());
    ASSERT_EQ(phys.liveRanges(), ref.liveRanges());
}

} // namespace

TEST(PhysMemoryFirstFit, RandomChurnMatchesNaiveReference)
{
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1337ULL}) {
        const Bytes capacity = 1_GiB;
        PhysMemory phys(capacity, 2_MiB);
        ReferencePhys ref(capacity);
        Rng rng(seed);

        struct LiveHandle
        {
            PhysHandle handle;
            Bytes refBase;
        };
        std::vector<LiveHandle> live;
        std::set<PhysHandle> everIssued;

        for (int op = 0; op < 4000; ++op) {
            const bool doCreate =
                live.empty() || rng.uniformInt(0, 99) < 55;
            if (doCreate) {
                // Mostly small, occasionally huge (prodding OOM).
                const Bytes size =
                    rng.uniformInt(0, 19) == 0
                        ? 2_MiB * rng.uniformInt(100, 300)
                        : 2_MiB * rng.uniformInt(1, 24);
                const auto got = phys.create(size);
                const auto expected = ref.create(size);
                ASSERT_EQ(got.ok(), expected.has_value())
                    << "seed " << seed << " op " << op;
                if (!got.ok()) {
                    EXPECT_EQ(got.code(), Errc::outOfMemory);
                } else {
                    // Same placement: the extent tree must pick the
                    // same lowest-base hole as the linear scan.
                    ASSERT_EQ(*phys.sizeOf(*got), size);
                    // Handle values are never recycled, even though
                    // the slots are.
                    EXPECT_TRUE(everIssued.insert(*got).second)
                        << "recycled handle value";
                    live.push_back(LiveHandle{*got, *expected});
                }
            } else {
                const std::size_t victim = static_cast<std::size_t>(
                    rng.uniformInt(0, live.size() - 1));
                const LiveHandle handle = live[victim];
                live[victim] = live.back();
                live.pop_back();
                ASSERT_TRUE(phys.release(handle.handle).ok());
                ref.release(handle.refBase);
                // The released handle is dead immediately.
                EXPECT_FALSE(phys.isLive(handle.handle));
                EXPECT_EQ(phys.sizeOf(handle.handle).code(),
                          Errc::invalidValue);
                EXPECT_EQ(phys.release(handle.handle).code(),
                          Errc::invalidValue);
            }
            ASSERT_NO_FATAL_FAILURE(expectInLockstep(phys, ref))
                << "seed " << seed << " op " << op;
        }

        // Drain: everything releases cleanly back to one hole.
        for (const LiveHandle &handle : live) {
            ASSERT_TRUE(phys.release(handle.handle).ok());
            ref.release(handle.refBase);
        }
        ASSERT_NO_FATAL_FAILURE(expectInLockstep(phys, ref));
        EXPECT_EQ(phys.holeCount(), 1u);
        EXPECT_EQ(phys.largestHole(), capacity);
        EXPECT_EQ(phys.inUse(), 0u);
    }
}

TEST(PhysMemoryFirstFit, ExtentMapQueriesMatchLinearScan)
{
    // Direct FreeExtentMap check: firstFit/nextFit answer exactly
    // like a linear scan of the extents, and largest() tracks the
    // maximum through heavy churn (the augmentation stays in
    // lockstep with the tree).
    FreeExtentMap extentMap;
    std::map<Bytes, Bytes> shadow;
    Rng rng(99);

    for (int op = 0; op < 6000; ++op) {
        const int dice = rng.uniformInt(0, 9);
        if (dice < 6 || shadow.empty()) {
            // Insert a fresh extent in an unoccupied spot.
            const Bytes base = 2_MiB * rng.uniformInt(0, 4095);
            const Bytes size = 2_MiB * rng.uniformInt(1, 32);
            bool clear = true;
            for (const auto &[b, sz] : shadow) {
                if (base + size > b && b + sz > base) {
                    clear = false;
                    break;
                }
            }
            if (!clear)
                continue;
            // Coalescing insert mirrors a map merge.
            auto next = shadow.lower_bound(base);
            Bytes at = base;
            Bytes sz = size;
            if (next != shadow.end() && at + sz == next->first) {
                sz += next->second;
                next = shadow.erase(next);
            }
            if (next != shadow.begin()) {
                auto prev = std::prev(next);
                if (prev->first + prev->second == at) {
                    at = prev->first;
                    sz += prev->second;
                    shadow.erase(prev);
                }
            }
            shadow.emplace(at, sz);
            extentMap.insertCoalescing(base, size);
        } else {
            const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(0, shadow.size() - 1));
            auto it = std::next(shadow.begin(),
                                static_cast<std::ptrdiff_t>(pick));
            ASSERT_TRUE(extentMap.erase(it->first));
            shadow.erase(it);
        }

        ASSERT_EQ(extentMap.count(), shadow.size());
        Bytes largest = 0;
        Bytes total = 0;
        for (const auto &[b, sz] : shadow) {
            largest = std::max(largest, sz);
            total += sz;
        }
        ASSERT_EQ(extentMap.largest(), largest);
        ASSERT_EQ(extentMap.totalBytes(), total);

        // Random first-fit probes against the linear answer.
        for (int probe = 0; probe < 3; ++probe) {
            const Bytes want = 2_MiB * rng.uniformInt(1, 40);
            std::optional<Bytes> expected;
            for (const auto &[b, sz] : shadow) {
                if (sz >= want) {
                    expected = b;
                    break;
                }
            }
            const auto got = extentMap.firstFit(want);
            ASSERT_EQ(got.has_value(), expected.has_value());
            if (got) {
                ASSERT_EQ(got->base, *expected);
            }
            // nextFit resumes past the first candidate.
            if (got) {
                std::optional<Bytes> expectedNext;
                for (const auto &[b, sz] : shadow) {
                    if (b > got->base && sz >= want) {
                        expectedNext = b;
                        break;
                    }
                }
                const auto next =
                    extentMap.nextFit(got->base, want);
                ASSERT_EQ(next.has_value(),
                          expectedNext.has_value());
                if (next) {
                    ASSERT_EQ(next->base, *expectedNext);
                }
            }
        }
    }

    // The in-order extents match the shadow exactly.
    const auto extents = extentMap.extents();
    ASSERT_EQ(extents.size(), shadow.size());
    std::size_t i = 0;
    for (const auto &[b, sz] : shadow) {
        EXPECT_EQ(extents[i].base, b);
        EXPECT_EQ(extents[i].size, sz);
        ++i;
    }
}
