/**
 * @file
 * Multi-rank cluster simulation tests.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "support/units.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::sim;
using namespace gmlake::workload;

namespace
{

TrainConfig
clusterConfig(int gpus = 4)
{
    TrainConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.strategies = Strategies::parse("LR");
    cfg.gpus = gpus;
    cfg.batchSize = 16;
    cfg.iterations = 4;
    return cfg;
}

} // namespace

TEST(Cluster, RunsOneResultPerRank)
{
    const auto cluster =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    ASSERT_EQ(cluster.ranks.size(), 4u);
    for (const auto &r : cluster.ranks) {
        EXPECT_FALSE(r.oom);
        EXPECT_GT(r.peakActive, 0u);
    }
    EXPECT_FALSE(cluster.anyOom());
}

TEST(Cluster, RanksDivergeWithData)
{
    const auto cluster =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    // Different seeds -> different traces -> some metric spread.
    bool differs = false;
    for (std::size_t r = 1; r < cluster.ranks.size(); ++r) {
        differs = differs || cluster.ranks[r].peakReserved !=
                                 cluster.ranks[0].peakReserved;
    }
    EXPECT_TRUE(differs);
    EXPECT_GE(cluster.maxPeakReserved(), cluster.minPeakReserved());
    EXPECT_LT(cluster.worstRank(), cluster.ranks.size());
}

TEST(Cluster, GmlakeShrinksTheRankSpread)
{
    const auto caching =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    const auto lake =
        runCluster(clusterConfig(4), AllocatorKind::gmlake);
    EXPECT_GE(lake.minUtilization() + 0.02,
              caching.minUtilization());
    EXPECT_LE(lake.maxPeakReserved(), caching.maxPeakReserved());
}

TEST(Cluster, GlobalThroughputGatedBySlowestRank)
{
    const auto cfg = clusterConfig(4);
    const auto cluster = runCluster(cfg, AllocatorKind::caching);
    const double global = cluster.globalSamplesPerSec(cfg);
    EXPECT_GT(global, 0.0);
    // Lockstep throughput cannot exceed what the slowest rank would
    // deliver if all ranks ran at its pace.
    double slowestAlone = 1e300;
    for (const auto &r : cluster.ranks)
        slowestAlone = std::min(slowestAlone, r.samplesPerSec);
    EXPECT_LE(global, slowestAlone * 1.001);
}

TEST(Cluster, AnyRankOomFailsTheJob)
{
    auto cfg = clusterConfig(2);
    cfg.batchSize = 512; // far beyond a 4 GiB device
    ScenarioOptions opts;
    opts.device.capacity = 4_GiB;
    const auto cluster =
        runCluster(cfg, AllocatorKind::caching, opts);
    EXPECT_TRUE(cluster.anyOom());
}

TEST(Cluster, ParallelExecutionIsBitIdenticalToSequential)
{
    const auto cfg = clusterConfig(4);
    const auto sequential =
        runCluster(cfg, AllocatorKind::gmlake, {}, 1);
    const auto parallel =
        runCluster(cfg, AllocatorKind::gmlake, {}, 4);

    ASSERT_EQ(sequential.ranks.size(), parallel.ranks.size());
    for (std::size_t r = 0; r < sequential.ranks.size(); ++r) {
        const RunResult &a = sequential.ranks[r];
        const RunResult &b = parallel.ranks[r];
        EXPECT_EQ(a.allocator, b.allocator) << "rank " << r;
        EXPECT_EQ(a.oom, b.oom) << "rank " << r;
        EXPECT_EQ(a.iterationsDone, b.iterationsDone) << "rank " << r;
        EXPECT_EQ(a.simTime, b.simTime) << "rank " << r;
        EXPECT_EQ(a.peakActive, b.peakActive) << "rank " << r;
        EXPECT_EQ(a.peakReserved, b.peakReserved) << "rank " << r;
        EXPECT_EQ(a.allocCount, b.allocCount) << "rank " << r;
        EXPECT_EQ(a.freeCount, b.freeCount) << "rank " << r;
        EXPECT_EQ(a.deviceApiTime, b.deviceApiTime) << "rank " << r;
        EXPECT_DOUBLE_EQ(a.utilization, b.utilization)
            << "rank " << r;
        EXPECT_DOUBLE_EQ(a.samplesPerSec, b.samplesPerSec)
            << "rank " << r;
        ASSERT_EQ(a.series.size(), b.series.size()) << "rank " << r;
        for (std::size_t i = 0; i < a.series.size(); ++i) {
            EXPECT_EQ(a.series[i].time, b.series[i].time);
            EXPECT_EQ(a.series[i].active, b.series[i].active);
            EXPECT_EQ(a.series[i].reserved, b.series[i].reserved);
        }
    }
}

TEST(Cluster, RankSeedsDoNotCollideAcrossNearbyBaseSeeds)
{
    // The historical scheme `seed + 1000 * rank` made (base=42,
    // rank=1) replay the same workload as (base=1042, rank=0). The
    // splitmix derivation keeps every (base, rank) pair distinct.
    auto a = clusterConfig(1);
    a.seed = 42;
    auto b = clusterConfig(1);
    b.seed = 1042;
    EXPECT_NE(clusterRankSeed(a, 1), clusterRankSeed(b, 0));
    EXPECT_NE(clusterRankSeed(a, 0), clusterRankSeed(b, 0));

    // And rank seeds are distinct within one job.
    for (int r = 1; r < 16; ++r)
        EXPECT_NE(clusterRankSeed(a, r), clusterRankSeed(a, 0))
            << "rank " << r;
}
