/**
 * @file
 * Multi-rank cluster simulation tests.
 */

#include <gtest/gtest.h>

#include "sim/cluster.hh"
#include "support/units.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::sim;
using namespace gmlake::workload;

namespace
{

TrainConfig
clusterConfig(int gpus = 4)
{
    TrainConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.strategies = Strategies::parse("LR");
    cfg.gpus = gpus;
    cfg.batchSize = 16;
    cfg.iterations = 4;
    return cfg;
}

} // namespace

TEST(Cluster, RunsOneResultPerRank)
{
    const auto cluster =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    ASSERT_EQ(cluster.ranks.size(), 4u);
    for (const auto &r : cluster.ranks) {
        EXPECT_FALSE(r.oom);
        EXPECT_GT(r.peakActive, 0u);
    }
    EXPECT_FALSE(cluster.anyOom());
}

TEST(Cluster, RanksDivergeWithData)
{
    const auto cluster =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    // Different seeds -> different traces -> some metric spread.
    bool differs = false;
    for (std::size_t r = 1; r < cluster.ranks.size(); ++r) {
        differs = differs || cluster.ranks[r].peakReserved !=
                                 cluster.ranks[0].peakReserved;
    }
    EXPECT_TRUE(differs);
    EXPECT_GE(cluster.maxPeakReserved(), cluster.minPeakReserved());
    EXPECT_LT(cluster.worstRank(), cluster.ranks.size());
}

TEST(Cluster, GmlakeShrinksTheRankSpread)
{
    const auto caching =
        runCluster(clusterConfig(4), AllocatorKind::caching);
    const auto lake =
        runCluster(clusterConfig(4), AllocatorKind::gmlake);
    EXPECT_GE(lake.minUtilization() + 0.02,
              caching.minUtilization());
    EXPECT_LE(lake.maxPeakReserved(), caching.maxPeakReserved());
}

TEST(Cluster, GlobalThroughputGatedBySlowestRank)
{
    const auto cfg = clusterConfig(4);
    const auto cluster = runCluster(cfg, AllocatorKind::caching);
    const double global = cluster.globalSamplesPerSec(cfg);
    EXPECT_GT(global, 0.0);
    // Lockstep throughput cannot exceed what the slowest rank would
    // deliver if all ranks ran at its pace.
    double slowestAlone = 1e300;
    for (const auto &r : cluster.ranks)
        slowestAlone = std::min(slowestAlone, r.samplesPerSec);
    EXPECT_LE(global, slowestAlone * 1.001);
}

TEST(Cluster, AnyRankOomFailsTheJob)
{
    auto cfg = clusterConfig(2);
    cfg.batchSize = 512; // far beyond a 4 GiB device
    ScenarioOptions opts;
    opts.device.capacity = 4_GiB;
    const auto cluster =
        runCluster(cfg, AllocatorKind::caching, opts);
    EXPECT_TRUE(cluster.anyOom());
}
