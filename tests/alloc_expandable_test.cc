/**
 * @file
 * Expandable-segments allocator tests: tail growth/trim, gap reuse
 * and coalescing, per-stream segments, interior-hole limitation vs
 * GMLake, and accounting invariants.
 */

#include <gtest/gtest.h>

#include "alloc/expandable_allocator.hh"
#include "core/gmlake_allocator.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;
using alloc::ExpandableSegmentsAllocator;
using alloc::ExpandableConfig;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

} // namespace

TEST(Expandable, GrowsMappingByChunks)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(5_MiB);
    ASSERT_TRUE(a.ok());
    // Mapped up to the 2 MiB chunk boundary: 6 MiB.
    EXPECT_EQ(allocator.stats().reservedBytes(), 6_MiB);
    EXPECT_EQ(allocator.chunkMaps(), 3u);
    EXPECT_EQ(allocator.segmentCount(), 1u);
    allocator.checkConsistency();
}

TEST(Expandable, SegmentGrowsInPlace)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(4_MiB);
    const auto b = allocator.allocate(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    // One segment, contiguous addresses.
    EXPECT_EQ(allocator.segmentCount(), 1u);
    EXPECT_EQ(b->addr, a->addr + 4_MiB);
    EXPECT_EQ(allocator.stats().reservedBytes(), 8_MiB);
    allocator.checkConsistency();
}

TEST(Expandable, FreedGapsCoalesceAndAreReused)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(4_MiB);
    const auto b = allocator.allocate(4_MiB);
    const auto c = allocator.allocate(4_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    ASSERT_TRUE(allocator.deallocate(b->id).ok());
    // The two freed neighbours merged into one 8 MiB gap.
    const auto d = allocator.allocate(8_MiB);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d->addr, a->addr);
    EXPECT_EQ(allocator.stats().reservedBytes(), 12_MiB); // no growth
    allocator.checkConsistency();
}

TEST(Expandable, EmptyCacheTrimsFreeTail)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(4_MiB);
    const auto b = allocator.allocate(12_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(allocator.deallocate(b->id).ok());
    allocator.emptyCache();
    // The tail unmapped down to a's end; physical memory returned.
    EXPECT_EQ(allocator.stats().reservedBytes(), 4_MiB);
    EXPECT_EQ(dev.phys().inUse(), 4_MiB);
    EXPECT_GT(allocator.chunkUnmaps(), 0u);
    allocator.checkConsistency();
}

TEST(Expandable, InteriorHolesAreNotTrimmable)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(8_MiB);
    const auto b = allocator.allocate(4_MiB); // pins the tail
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    allocator.emptyCache();
    // The 8 MiB interior hole stays mapped (b lives above it).
    EXPECT_EQ(allocator.stats().reservedBytes(), 12_MiB);
    allocator.checkConsistency();
}

TEST(Expandable, PerStreamSegments)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(4_MiB, 1);
    const auto b = allocator.allocate(4_MiB, 2);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(allocator.segmentCount(), 2u);
    allocator.checkConsistency();
}

TEST(Expandable, CrossStreamGapReuseNeedsSyncOrLag)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(8_MiB, 1);
    const auto pin = allocator.allocate(2_MiB, 1);
    ASSERT_TRUE(a.ok() && pin.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());

    // Stream 1's own requests reuse the gap immediately.
    const auto c = allocator.allocate(8_MiB, 1);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c->addr, a->addr);
    allocator.checkConsistency();
}

TEST(Expandable, OomWhenPhysicalExhausted)
{
    vmm::Device dev(smallDevice(32_MiB));
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(24_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(allocator.allocate(16_MiB).code(), Errc::outOfMemory);
    allocator.checkConsistency();
}

TEST(Expandable, OomRetryTrimsOtherSegments)
{
    vmm::Device dev(smallDevice(32_MiB));
    ExpandableSegmentsAllocator allocator(dev);
    // Stream 1 maps 24 MiB then frees it (stays mapped as cache).
    const auto a = allocator.allocate(24_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    // Stream 2 needs 16 MiB: stream 1's free tail is trimmed back to
    // the device to make room.
    const auto b = allocator.allocate(16_MiB, 2);
    ASSERT_TRUE(b.ok());
    allocator.checkConsistency();
}

TEST(Expandable, UnknownIdAndZeroByteRejected)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    EXPECT_EQ(allocator.deallocate(3).code(), Errc::invalidValue);
    EXPECT_EQ(allocator.allocate(0).code(), Errc::invalidValue);
    EXPECT_EQ(allocator.allocate(1_MiB, kAnyStream).code(),
              Errc::invalidValue);
}

TEST(Expandable, SnapshotTilesSegments)
{
    vmm::Device dev(smallDevice());
    ExpandableSegmentsAllocator allocator(dev);
    const auto a = allocator.allocate(4_MiB);
    const auto b = allocator.allocate(6_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(allocator.deallocate(a->id).ok());
    const auto snap = allocator.snapshot();
    ASSERT_EQ(snap.regions.size(), 1u);
    Bytes total = 0;
    for (const auto &blk : snap.regions[0].blocks)
        total += blk.size;
    EXPECT_EQ(total, snap.regions[0].size);
    EXPECT_EQ(snap.freeBlockBytes(),
              allocator.stats().reservedBytes() -
                  allocator.stats().activeBytes());
}

TEST(Expandable, GmlakeStitchesInteriorHolesExpandableCannot)
{
    // The design difference in one scenario: two interior holes of
    // 8 MiB each cannot serve a 16 MiB request under expandable
    // segments (fixed VA), but GMLake stitches them.
    const auto run = [](alloc::Allocator &allocator, Bytes &grown) {
        const auto a = allocator.allocate(8_MiB);
        const auto p1 = allocator.allocate(2_MiB);
        const auto b = allocator.allocate(8_MiB);
        const auto p2 = allocator.allocate(2_MiB);
        ASSERT_TRUE(a.ok() && p1.ok() && b.ok() && p2.ok());
        ASSERT_TRUE(allocator.deallocate(a->id).ok());
        ASSERT_TRUE(allocator.deallocate(b->id).ok());
        const Bytes before = allocator.stats().reservedBytes();
        const auto big = allocator.allocate(16_MiB);
        ASSERT_TRUE(big.ok());
        grown = allocator.stats().reservedBytes() - before;
    };

    Bytes expandableGrowth = 0;
    {
        vmm::Device dev(smallDevice());
        ExpandableSegmentsAllocator allocator(dev);
        run(allocator, expandableGrowth);
    }
    Bytes gmlakeGrowth = 0;
    {
        vmm::Device dev(smallDevice());
        core::GMLakeConfig gc;
        gc.nearMatchTolerance = 0.0;
        core::GMLakeAllocator allocator(dev, gc);
        run(allocator, gmlakeGrowth);
    }
    EXPECT_EQ(expandableGrowth, 16_MiB); // had to map new chunks
    EXPECT_EQ(gmlakeGrowth, 0u);         // stitched the holes
}

TEST(Expandable, RandomWalkStaysConsistent)
{
    vmm::Device dev(smallDevice(1_GiB));
    ExpandableSegmentsAllocator allocator(dev);
    std::vector<alloc::AllocId> live;
    std::uint64_t x = 77;
    auto rnd = [&x]() {
        x ^= x << 13; x ^= x >> 7; x ^= x << 17;
        return x;
    };
    for (int i = 0; i < 2500; ++i) {
        if (live.empty() || rnd() % 3 != 0) {
            const auto a = allocator.allocate(
                512 + rnd() % (6_MiB), rnd() % 3);
            if (!a.ok()) {
                ASSERT_EQ(a.code(), Errc::outOfMemory);
                continue;
            }
            live.push_back(a->id);
        } else {
            const std::size_t idx = rnd() % live.size();
            ASSERT_TRUE(allocator.deallocate(live[idx]).ok());
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
        if (i % 250 == 0) {
            allocator.checkConsistency();
        }
        if (i % 613 == 0)
            allocator.deviceSynchronize();
    }
    allocator.checkConsistency();
    EXPECT_GE(allocator.stats().reservedBytes(),
              allocator.stats().activeBytes());
}
