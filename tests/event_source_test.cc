/**
 * @file
 * EventSource cursor tests: VectorSource is bit-identical to indexed
 * trace iteration (owned and borrowed, with the borrowed-lifetime
 * assert firing loudly in debug builds), RemapSource matches
 * remapEvent(), MergeSource replays deterministically across resets,
 * the generator sources (KV-cache serving, train loop, mixed fleet)
 * produce valid, seed-deterministic streams, and runSource() over a
 * VectorSource reproduces runTrace() exactly.
 */

#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <vector>

#include "sim/runner.hh"
#include "support/logging.hh"
#include "support/units.hh"
#include "vmm/device.hh"
#include "workload/event_source.hh"
#include "workload/generators.hh"
#include "workload/model_zoo.hh"
#include "workload/trace.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;
using namespace gmlake::workload;

namespace
{

Trace
richTrace()
{
    TraceBuilder tb;
    tb.iterationMark();
    const auto a = tb.alloc(3_MiB, 1);
    const auto b = tb.alloc(512_KiB, 2);
    tb.compute(1'234'567);
    tb.touch(a);
    tb.streamSync(2);
    tb.free(b);
    tb.streamSync(kAnyStream);
    tb.iterationMark();
    const auto c = tb.alloc(7_MiB);
    tb.prefetch(c);
    tb.free(a);
    tb.free(c);
    return tb.take();
}

void
expectSameEvent(const Event &got, const Event &want, std::size_t i)
{
    EXPECT_EQ(got.kind, want.kind) << "event " << i;
    EXPECT_EQ(got.tensor, want.tensor) << "event " << i;
    EXPECT_EQ(got.bytes, want.bytes) << "event " << i;
    EXPECT_EQ(got.computeNs, want.computeNs) << "event " << i;
    EXPECT_EQ(got.stream, want.stream) << "event " << i;
}

/** Drain @p source into a vector of copies. */
std::vector<Event>
drain(EventSource &source)
{
    std::vector<Event> events;
    while (const Event *e = source.peek()) {
        events.push_back(*e);
        source.advance();
    }
    return events;
}

void
expectSameStream(const std::vector<Event> &got,
                 const std::vector<Event> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameEvent(got[i], want[i], i);
}

} // namespace

TEST(EventSource, VectorSourceMatchesIndexedIteration)
{
    const Trace trace = richTrace();
    VectorSource source(&trace);
    EXPECT_EQ(source.sizeHint(), trace.size());

    const auto events = drain(source);
    ASSERT_EQ(events.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        expectSameEvent(events[i], trace.events()[i], i);
    EXPECT_EQ(source.peek(), nullptr);
}

TEST(EventSource, VectorSourceOwnedResetReplays)
{
    VectorSource source(richTrace());
    const auto first = drain(source);
    EXPECT_EQ(source.peek(), nullptr);
    source.reset();
    const auto second = drain(source);
    expectSameStream(second, first);
}

TEST(EventSource, MaterializeRoundTrips)
{
    const Trace trace = richTrace();
    VectorSource source(&trace);
    const Trace copy = materialize(source);
    ASSERT_EQ(copy.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        expectSameEvent(copy.events()[i], trace.events()[i], i);
    EXPECT_EQ(copy.stats().allocCount, trace.stats().allocCount);
    EXPECT_EQ(copy.stats().totalAllocBytes,
              trace.stats().totalAllocBytes);
    EXPECT_EQ(copy.stats().iterations, trace.stats().iterations);
}

TEST(EventSource, RemapSourceMatchesRemapEvent)
{
    const Trace trace = richTrace();
    const TraceNamespace ns{1000, 32};

    VectorSource inner(&trace);
    RemapSource remapped(inner, ns);
    EXPECT_EQ(remapped.sizeHint(), trace.size());

    const auto events = drain(remapped);
    ASSERT_EQ(events.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        expectSameEvent(events[i],
                        remapEvent(trace.events()[i], ns), i);
}

TEST(EventSource, RemapSourcePreservesAnyStreamSentinel)
{
    TraceBuilder tb;
    const auto a = tb.alloc(1_MiB, 3);
    tb.streamSync(kAnyStream);
    tb.free(a);
    const Trace trace = tb.take();

    VectorSource inner(&trace);
    RemapSource remapped(inner, {500, 16});
    const auto events = drain(remapped);
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].stream, 3u + 16u);
    EXPECT_EQ(events[1].stream, kAnyStream);
}

TEST(EventSource, MergeSourceMatchesMergeTraces)
{
    workload::TrainConfig cfg;
    cfg.model = findModel("GPT-2");
    cfg.iterations = 2;
    const Trace first = generateTrainingTrace(cfg);
    cfg.seed = 77;
    const Trace second = generateTrainingTrace(cfg);

    const TraceNamespace nsB{TensorId{1} << 32, 64};
    const Trace secondRemapped = remapTrace(second, nsB);
    const Trace merged = mergeTraces({&first, &secondRemapped});

    std::vector<MergeInput> inputs;
    inputs.push_back({std::make_unique<VectorSource>(&first), {}, 0});
    inputs.push_back(
        {std::make_unique<VectorSource>(&second), nsB, 0});
    MergeSource source(std::move(inputs));

    const auto events = drain(source);
    ASSERT_EQ(events.size(), merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        expectSameEvent(events[i], merged.events()[i], i);
}

TEST(EventSource, MergeSourceResetReplays)
{
    const Trace first = richTrace();
    const Trace second = richTrace();

    std::vector<MergeInput> inputs;
    inputs.push_back({std::make_unique<VectorSource>(&first), {}, 0});
    inputs.push_back({std::make_unique<VectorSource>(&second),
                      {TensorId{1} << 32, 64},
                      5'000});
    MergeSource source(std::move(inputs));

    const auto firstPass = drain(source);
    EXPECT_FALSE(firstPass.empty());
    source.reset();
    const auto secondPass = drain(source);
    expectSameStream(secondPass, firstPass);
}

#ifndef NDEBUG
TEST(EventSource, BorrowedTraceDestructionFailsLoudly)
{
    // Destroy a borrowed Trace in place (the storage stays alive so
    // the liveness cookie remains readable) and require the cursor
    // to detect the dangling borrow instead of replaying garbage.
    alignas(Trace) unsigned char storage[sizeof(Trace)];
    Trace *trace = new (storage) Trace(richTrace());
    VectorSource source(trace);
    EXPECT_NE(source.peek(), nullptr);
    trace->~Trace();
    EXPECT_THROW(source.peek(), PanicError);
}
#endif

// ------------------------------------------------------- generators

TEST(EventSource, KvServeSourceIsValidAndComplete)
{
    KvServeConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.maxBatch = 8;
    cfg.requests = 64;
    const auto blockBytes = KvServeSource(cfg).blockBytes();
    EXPECT_GT(blockBytes, 0u);

    KvServeSource source(cfg);
    const Trace trace = materialize(source);
    trace.validate(); // every block freed, no double alloc/free

    EXPECT_EQ(source.counters().admitted, cfg.requests);
    EXPECT_EQ(source.counters().served, cfg.requests);
    EXPECT_EQ(source.counters().emitted, trace.size());
    EXPECT_GT(source.counters().blockAllocs, cfg.requests);
    // Every KV allocation is exactly one block.
    for (const Event &e : trace.events()) {
        if (e.kind == EventKind::alloc) {
            EXPECT_EQ(e.bytes, blockBytes);
        }
    }
}

TEST(EventSource, KvServeSourceIsSeedDeterministic)
{
    KvServeConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.maxBatch = 6;
    cfg.requests = 48;

    KvServeSource a(cfg);
    KvServeSource b(cfg);
    expectSameStream(drain(a), drain(b));

    cfg.seed = 1234;
    KvServeSource c(cfg);
    const auto other = drain(c);
    const auto base = [&] {
        a.reset();
        return drain(a);
    }();
    EXPECT_NE(other.size(), 0u);
    // Different seed, different serving day.
    bool differs = other.size() != base.size();
    for (std::size_t i = 0;
         !differs && i < other.size() && i < base.size(); ++i)
        differs = other[i].kind != base[i].kind ||
                  other[i].tensor != base[i].tensor ||
                  other[i].bytes != base[i].bytes;
    EXPECT_TRUE(differs);
}

TEST(EventSource, KvServeSourceResetReplaysIdentically)
{
    KvServeConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.maxBatch = 4;
    cfg.requests = 24;

    KvServeSource source(cfg);
    const auto first = drain(source);
    source.reset();
    const auto second = drain(source);
    expectSameStream(second, first);
}

TEST(EventSource, TrainLoopSourceIsValid)
{
    TrainLoopConfig cfg;
    cfg.model = findModel("OPT-1.3B");
    cfg.iterations = 4;

    TrainLoopSource source(cfg);
    const Trace trace = materialize(source);
    trace.validate();

    int marks = 0;
    for (const Event &e : trace.events()) {
        if (e.kind == EventKind::iterationMark)
            ++marks;
    }
    EXPECT_EQ(marks, cfg.iterations);

    TrainLoopSource again(cfg);
    VectorSource wanted(trace);
    expectSameStream(drain(again), drain(wanted));
}

TEST(EventSource, FleetSourceMergesDisjointTenants)
{
    FleetConfig cfg;
    cfg.serve.model = findModel("OPT-1.3B");
    cfg.serve.maxBatch = 4;
    cfg.serve.requests = 16;
    cfg.serveTenants = 2;
    cfg.train.model = findModel("OPT-1.3B");
    cfg.train.iterations = 2;
    cfg.trainTenants = 1;
    cfg.arrivalStaggerNs = 1'000'000;

    const auto source = makeFleetSource(cfg);
    const Trace trace = materialize(*source);
    trace.validate();

    // Tenants occupy disjoint tensor namespaces.
    bool tenant0 = false, tenant1 = false, tenant2 = false;
    for (const Event &e : trace.events()) {
        if (e.kind != EventKind::alloc)
            continue;
        const auto tenant = e.tensor / cfg.tensorStride;
        tenant0 |= tenant == 0;
        tenant1 |= tenant == 1;
        tenant2 |= tenant == 2;
    }
    EXPECT_TRUE(tenant0);
    EXPECT_TRUE(tenant1);
    EXPECT_TRUE(tenant2);

    // Deterministic: a second fleet replays the same day.
    const auto again = makeFleetSource(cfg);
    VectorSource wanted(trace);
    expectSameStream(drain(*again), drain(wanted));
}

// ----------------------------------------------- engine equivalence

TEST(EventSource, RunSourceMatchesRunTrace)
{
    workload::TrainConfig cfg;
    cfg.model = findModel("GPT-2");
    cfg.iterations = 2;
    const Trace trace = generateTrainingTrace(cfg);

    sim::RunResult byTrace, bySource;
    {
        vmm::Device device;
        const auto allocator = sim::makeAllocator(
            sim::AllocatorKind::gmlake, device);
        byTrace = sim::runTrace(*allocator, device, trace, &cfg);
    }
    {
        vmm::Device device;
        const auto allocator = sim::makeAllocator(
            sim::AllocatorKind::gmlake, device);
        bySource = sim::runSource(
            *allocator, device,
            std::make_unique<VectorSource>(&trace), &cfg);
    }

    EXPECT_EQ(bySource.oom, byTrace.oom);
    EXPECT_EQ(bySource.simTime, byTrace.simTime);
    EXPECT_EQ(bySource.peakActive, byTrace.peakActive);
    EXPECT_EQ(bySource.peakReserved, byTrace.peakReserved);
    EXPECT_EQ(bySource.allocCount, byTrace.allocCount);
    EXPECT_EQ(bySource.freeCount, byTrace.freeCount);
    EXPECT_EQ(bySource.iterationsDone, byTrace.iterationsDone);
    EXPECT_EQ(bySource.deviceApiTime, byTrace.deviceApiTime);
}
