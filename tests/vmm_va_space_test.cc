/**
 * @file
 * Virtual address space tests: reservation, alignment, hole reuse
 * and coalescing, containment queries.
 */

#include <gtest/gtest.h>

#include "support/units.hh"
#include "vmm/va_space.hh"

using namespace gmlake;
using namespace gmlake::literals;
using vmm::VaSpace;

TEST(VaSpace, ReserveReturnsAlignedDisjointRanges)
{
    VaSpace va;
    const auto a = va.reserve(4_MiB, 2_MiB);
    const auto b = va.reserve(4_MiB, 2_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(*a % (2_MiB), 0u);
    EXPECT_EQ(*b % (2_MiB), 0u);
    // Ranges must not overlap.
    const bool disjoint = *a + 4_MiB <= *b || *b + 4_MiB <= *a;
    EXPECT_TRUE(disjoint);
    EXPECT_EQ(va.reservedBytes(), 8_MiB);
}

TEST(VaSpace, RejectsBadArguments)
{
    VaSpace va;
    EXPECT_EQ(va.reserve(0, 2_MiB).code(), Errc::invalidValue);
    EXPECT_EQ(va.reserve(2_MiB, 0).code(), Errc::invalidValue);
    EXPECT_EQ(va.reserve(2_MiB, 3).code(), Errc::invalidValue);
}

TEST(VaSpace, FreeAndReuseHole)
{
    VaSpace va;
    const auto a = va.reserve(4_MiB, 2_MiB);
    const auto b = va.reserve(4_MiB, 2_MiB);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(va.free(*a).ok());
    EXPECT_EQ(va.reservedBytes(), 4_MiB);
    // A same-size reservation reuses the hole (first fit).
    const auto c = va.reserve(4_MiB, 2_MiB);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(*c, *a);
}

TEST(VaSpace, HolesCoalesce)
{
    VaSpace va;
    const auto a = va.reserve(2_MiB, 2_MiB);
    const auto b = va.reserve(2_MiB, 2_MiB);
    const auto c = va.reserve(2_MiB, 2_MiB);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_TRUE(va.free(*a).ok());
    EXPECT_TRUE(va.free(*c).ok());
    EXPECT_TRUE(va.free(*b).ok()); // merges with both neighbours
    const auto big = va.reserve(6_MiB, 2_MiB);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(*big, *a); // the merged hole starts at a
}

TEST(VaSpace, FreeOfNonBaseFails)
{
    VaSpace va;
    const auto a = va.reserve(4_MiB, 2_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(va.free(*a + 2_MiB).code(), Errc::invalidValue);
    EXPECT_EQ(va.free(0xdead).code(), Errc::invalidValue);
}

TEST(VaSpace, ContainingQueries)
{
    VaSpace va;
    const auto a = va.reserve(4_MiB, 2_MiB);
    ASSERT_TRUE(a.ok());
    const auto whole = va.containing(*a, 4_MiB);
    ASSERT_TRUE(whole.ok());
    EXPECT_EQ(whole->base, *a);
    EXPECT_EQ(whole->size, 4_MiB);

    const auto inner = va.containing(*a + 1_MiB, 1_MiB);
    EXPECT_TRUE(inner.ok());

    EXPECT_EQ(va.containing(*a, 5_MiB).code(), Errc::notReserved);
    EXPECT_EQ(va.containing(*a - 1, 1).code(), Errc::notReserved);
}

TEST(VaSpace, LimitEnforced)
{
    VaSpace va(8_MiB);
    EXPECT_TRUE(va.reserve(8_MiB, 2_MiB).ok());
    EXPECT_EQ(va.reserve(2_MiB, 2_MiB).code(),
              Errc::addressSpaceFull);
}

TEST(VaSpace, PeakReservedTracksHighWater)
{
    VaSpace va;
    const auto a = va.reserve(6_MiB, 2_MiB);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(va.free(*a).ok());
    (void)va.reserve(2_MiB, 2_MiB);
    EXPECT_EQ(va.peakReservedBytes(), 6_MiB);
    EXPECT_EQ(va.reservedBytes(), 2_MiB);
}

TEST(VaSpace, ManyReservationsStayDisjoint)
{
    VaSpace va;
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 200; ++i) {
        const auto r = va.reserve((i % 7 + 1) * 2_MiB, 2_MiB);
        ASSERT_TRUE(r.ok());
        addrs.push_back(*r);
    }
    // Free every other one and re-reserve; no overlap may appear.
    for (std::size_t i = 0; i < addrs.size(); i += 2)
        ASSERT_TRUE(va.free(addrs[i]).ok());
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(va.reserve(2_MiB, 2_MiB).ok());
    EXPECT_GT(va.reservationCount(), 100u);
}
