/**
 * @file
 * Stream-awareness tests: blocks freed on one stream may not be
 * reused by another until the free event lapses or a synchronization
 * retags them — for both the caching allocator and GMLake.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "alloc/caching_allocator.hh"
#include "core/gmlake_allocator.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "support/units.hh"
#include "vmm/device.hh"
#include "workload/trace.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

vmm::DeviceConfig
smallDevice(Bytes capacity = 256_MiB)
{
    vmm::DeviceConfig cfg;
    cfg.capacity = capacity;
    cfg.granularity = 2_MiB;
    return cfg;
}

constexpr Tick kLag = 2'000'000; // default streamEventLagNs

} // namespace

// ----------------------------------------------------- caching

TEST(StreamCaching, SameStreamReuseIsImmediate)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    const auto b = alloc.allocate(30_MiB, 1);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, a->addr);
    EXPECT_EQ(dev.counters().mallocNative, 1u);
}

TEST(StreamCaching, CrossStreamReuseBlockedUntilEventLapses)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());

    // Immediately after the free, stream 2 may not touch the block.
    const auto b = alloc.allocate(30_MiB, 2);
    ASSERT_TRUE(b.ok());
    EXPECT_NE(b->addr, a->addr);
    EXPECT_EQ(dev.counters().mallocNative, 2u);

    // After the event lag, the cached block is fair game.
    dev.clock().advance(kLag);
    const auto c = alloc.allocate(30_MiB, 2);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c->addr, a->addr);
    EXPECT_EQ(dev.counters().mallocNative, 2u);
    alloc.checkConsistency();
}

TEST(StreamCaching, StreamSynchronizeRetagsImmediately)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    const auto a = alloc.allocate(30_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    alloc.streamSynchronize(1);
    const auto b = alloc.allocate(30_MiB, 2);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, a->addr);
}

TEST(StreamCaching, DeviceSynchronizeRetagsEverything)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    const auto a = alloc.allocate(20_MiB, 1);
    const auto b = alloc.allocate(20_MiB, 2);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    ASSERT_TRUE(alloc.deallocate(b->id).ok());
    alloc.deviceSynchronize();
    const auto c = alloc.allocate(20_MiB, 3);
    const auto d = alloc.allocate(20_MiB, 4);
    ASSERT_TRUE(c.ok() && d.ok());
    EXPECT_EQ(dev.counters().mallocNative, 2u); // both reused
    alloc.checkConsistency();
}

TEST(StreamCaching, NeighboursFromDifferentStreamsDoNotMergeEarly)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    // Two blocks split from one segment, freed by different streams.
    const auto big = alloc.allocate(40_MiB, 1);
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(alloc.deallocate(big->id).ok());
    const auto a = alloc.allocate(20_MiB, 1);
    ASSERT_TRUE(a.ok());
    dev.clock().advance(kLag); // let stream 2 take the remainder
    const auto b = alloc.allocate(20_MiB, 2);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(alloc.deallocate(a->id).ok());
    ASSERT_TRUE(alloc.deallocate(b->id).ok());
    // Adjacent free halves carry different stream tags: they must
    // not merge yet, so the 40 MiB block is not servable in place.
    // After a device synchronization they merge and the whole
    // segment is reused.
    alloc.deviceSynchronize();
    const auto whole = alloc.allocate(40_MiB, 3);
    ASSERT_TRUE(whole.ok());
    EXPECT_EQ(dev.counters().mallocNative, 1u);
    alloc.checkConsistency();
}

TEST(StreamCaching, SentinelStreamRejected)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    EXPECT_EQ(alloc.allocate(2_MiB, kAnyStream).code(),
              Errc::invalidValue);
}

// ------------------------------------------------------- gmlake

TEST(StreamGmlake, CrossStreamExactMatchBlockedUntilEventLapses)
{
    vmm::Device dev(smallDevice());
    core::GMLakeConfig gc;
    gc.nearMatchTolerance = 0.0;
    core::GMLakeAllocator lake(dev, gc);

    const auto a = lake.allocate(20_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());

    const Bytes before = lake.physicalBytes();
    const auto b = lake.allocate(20_MiB, 2);
    ASSERT_TRUE(b.ok());
    EXPECT_GT(lake.physicalBytes(), before); // had to grow
    lake.checkConsistency();
}

TEST(StreamGmlake, CrossStreamReuseAfterLag)
{
    vmm::Device dev(smallDevice());
    core::GMLakeConfig gc;
    gc.nearMatchTolerance = 0.0;
    core::GMLakeAllocator lake(dev, gc);

    const auto a = lake.allocate(20_MiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    dev.clock().advance(gc.streamEventLagNs);

    const Bytes before = lake.physicalBytes();
    const auto b = lake.allocate(20_MiB, 2);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(lake.physicalBytes(), before);
    EXPECT_EQ(b->addr, a->addr);
    lake.checkConsistency();
}

TEST(StreamGmlake, StitchOnlyUsesStreamCompatibleMembers)
{
    vmm::Device dev(smallDevice(64_MiB));
    core::GMLakeConfig gc;
    gc.nearMatchTolerance = 0.0;
    core::GMLakeAllocator lake(dev, gc);

    // Two fragments freed on stream 1, one on stream 2.
    const auto a = lake.allocate(10_MiB, 1);
    const auto sp = lake.allocate(2_MiB, 1);
    const auto b = lake.allocate(10_MiB, 2);
    ASSERT_TRUE(a.ok() && sp.ok() && b.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(b->id).ok());

    // A 20 MiB request on stream 1 cannot stitch b's block yet; with
    // only 10 MiB eligible it must allocate the shortfall.
    const auto big = lake.allocate(20_MiB, 1);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.physicalBytes(), 32_MiB); // 22 + 10 grown
    lake.checkConsistency();
}

TEST(StreamGmlake, DeviceSynchronizeEnablesCrossStreamStitch)
{
    vmm::Device dev(smallDevice(64_MiB));
    core::GMLakeConfig gc;
    gc.nearMatchTolerance = 0.0;
    core::GMLakeAllocator lake(dev, gc);

    const auto a = lake.allocate(10_MiB, 1);
    const auto sp = lake.allocate(2_MiB, 1);
    const auto b = lake.allocate(10_MiB, 2);
    ASSERT_TRUE(a.ok() && sp.ok() && b.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    ASSERT_TRUE(lake.deallocate(b->id).ok());
    lake.deviceSynchronize();

    const Bytes before = lake.physicalBytes();
    const auto big = lake.allocate(20_MiB, 3);
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(lake.physicalBytes(), before); // stitched, no growth
    EXPECT_GE(lake.strategy().stitches, 1u);
    lake.checkConsistency();
}

TEST(StreamGmlake, SmallPathIsStreamAwareToo)
{
    vmm::Device dev(smallDevice());
    core::GMLakeAllocator lake(dev);
    const auto a = lake.allocate(64_KiB, 1);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(lake.deallocate(a->id).ok());
    // Same stream reuses the small block in place.
    const auto b = lake.allocate(64_KiB, 1);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->addr, a->addr);
    lake.checkConsistency();
}

TEST(StreamGmlake, SentinelStreamRejected)
{
    vmm::Device dev(smallDevice());
    core::GMLakeAllocator lake(dev);
    EXPECT_EQ(lake.allocate(4_MiB, kAnyStream).code(),
              Errc::invalidValue);
}

// ----------------------------------------------- trace + engine

TEST(StreamTrace, V2RoundTripKeepsStreamsAndSyncs)
{
    workload::TraceBuilder tb;
    const auto a = tb.alloc(4_MiB, 1);
    tb.streamSync(1);
    const auto b = tb.alloc(8_MiB, 2);
    tb.streamSync(kAnyStream);
    tb.free(a);
    tb.free(b);
    const auto original = tb.take();

    std::stringstream ss;
    original.save(ss);
    const auto loaded = workload::Trace::load(ss);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.events()[0].stream, 1u);
    EXPECT_EQ(loaded.events()[1].kind,
              workload::EventKind::streamSync);
    EXPECT_EQ(loaded.events()[2].stream, 2u);
    EXPECT_EQ(loaded.events()[3].stream, kAnyStream);
}

TEST(StreamTrace, V1TracesStillLoad)
{
    std::stringstream ss("gmlake-trace-v1 3\n"
                         "a 1 1048576\n"
                         "c 500\n"
                         "f 1\n");
    const auto trace = workload::Trace::load(ss);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.events()[0].stream, kDefaultStream);
}

TEST(StreamTrace, BuilderRejectsSentinelAllocation)
{
    workload::TraceBuilder tb;
    EXPECT_THROW(tb.alloc(1_MiB, kAnyStream), std::logic_error);
}

TEST(StreamEngine, SyncEventsReachTheAllocator)
{
    vmm::Device dev(smallDevice());
    alloc::CachingAllocator alloc(dev);
    workload::TraceBuilder tb;
    const auto a = tb.alloc(30_MiB, 1);
    tb.free(a);
    tb.streamSync(1);
    const auto b = tb.alloc(30_MiB, 2); // reuses thanks to the sync
    tb.free(b);
    const auto r = sim::runTrace(alloc, dev, tb.take());
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(dev.counters().mallocNative, 1u);
}

TEST(StreamEngine, MultiStreamTraceRaisesBaselineFragmentation)
{
    // The stream-partitioned pools are a fragmentation source of
    // their own: the same workload with multi-stream off is tighter.
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 8;
    cfg.batchSize = 16;
    cfg.iterations = 8;

    cfg.multiStream = true;
    const auto multi =
        sim::runScenario(cfg, sim::AllocatorKind::caching);
    cfg.multiStream = false;
    const auto single =
        sim::runScenario(cfg, sim::AllocatorKind::caching);
    EXPECT_GE(multi.fragmentation + 0.02, single.fragmentation);
}
