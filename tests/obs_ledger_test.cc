/**
 * @file
 * obs::Ledger unit tests on synthetic event streams: the token join
 * between alloc spans and their in-scope events, binding intervals,
 * point-in-time queries, and origin labelling.
 *
 * The join regression test matters most: the `alloc` span is stamped
 * with the allocate() *start* time but emitted after the scope body,
 * so in the merged (simTime-sorted) stream it precedes the events it
 * must join with. An order-dependent single-pass join reads an empty
 * scope and mislabels every allocation "small-path, 0 device calls".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/ledger.hh"
#include "obs/recorder.hh"

using namespace gmlake;
using namespace gmlake::obs;

namespace
{

/** Emit one full allocate() scope the way the allocator does: inner
 *  events first (later simulated times), the alloc span last with
 *  the scope's start time. */
void
emitAllocScope(Recorder &rec, std::uint32_t track,
               std::uint64_t allocId, std::uint64_t token,
               std::uint64_t t0, std::uint64_t bytes,
               AllocPhase phase)
{
    rec.span(EvName::devMap, EventCat::device, track, t0 + 10, 30,
             bytes, 0, token);
    rec.span(EvName::devSetAccess, EventCat::device, track, t0 + 40,
             5, 1, 0, token);
    rec.instant(EvName::allocPhase, EventCat::alloc, track, t0 + 50,
                static_cast<std::uint64_t>(phase), bytes, token);
    // The span sorts *before* everything above despite being emitted
    // last — that is the whole point of this fixture.
    rec.span(EvName::alloc, EventCat::alloc, track, t0, 60, allocId,
             bytes, token);
}

} // namespace

TEST(ObsLedger, JoinSurvivesAllocSpanSortingFirst)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("alloc");

    emitAllocScope(rec, track, /*allocId=*/7, /*token=*/101,
                   /*t0=*/1000, /*bytes=*/64 << 20,
                   AllocPhase::s4Insufficient);

    const RecorderSnapshot snap = rec.snapshot();
    // Fixture sanity: the merged stream really does put the alloc
    // span first.
    ASSERT_EQ(snap.events.front().name, EvName::alloc);

    const Ledger ledger = Ledger::build(snap);
    const AllocProvenance *p = ledger.alloc(7);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->phase, AllocPhase::s4Insufficient);
    EXPECT_EQ(p->deviceCalls, 2u);
    EXPECT_EQ(p->deviceCostNs, 35u);
    EXPECT_EQ(p->requested, std::uint64_t{64 << 20});
    EXPECT_EQ(p->token, 101u);
    EXPECT_EQ(p->originLabel(), "fresh reserve");
}

TEST(ObsLedger, StitchMembersAndOffloadJoinByToken)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("alloc");

    const std::uint64_t token = 55;
    const std::uint64_t members[] = {3, 5, 8};
    rec.instant(EvName::reclaimRung, EventCat::alloc, track, 1005, 1,
                0, token);
    rec.span(EvName::spill, EventCat::offload, track, 1010, 20, 3,
             2 << 20, token);
    rec.span(EvName::faultIn, EventCat::offload, track, 1040, 20, 3,
             2 << 20, token);
    Event stitch;
    stitch.simTime = 1060;
    stitch.track = track;
    stitch.name = EvName::stitch;
    stitch.kind = EventKind::instant;
    stitch.cat = EventCat::alloc;
    stitch.a0 = 42;       // sBlock id
    stitch.a1 = 6 << 20;
    stitch.a2 = token;
    rec.emitWithBlob(stitch, members, 3);
    rec.instant(EvName::allocPhase, EventCat::alloc, track, 1070,
                static_cast<std::uint64_t>(AllocPhase::s3MultiBlocks),
                6 << 20, token);
    rec.span(EvName::alloc, EventCat::alloc, track, 1000, 80, 9,
             6 << 20, token);

    // Another scope with a different token must not bleed in.
    emitAllocScope(rec, track, 10, 56, 2000, 1 << 20,
                   AllocPhase::s1ExactMatch);

    const Ledger ledger = Ledger::build(rec.snapshot());
    const AllocProvenance *p = ledger.alloc(9);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->phase, AllocPhase::s3MultiBlocks);
    EXPECT_EQ(p->sBlockId, 42u);
    ASSERT_EQ(p->members.size(), 3u);
    EXPECT_EQ(p->members[0], 3u);
    EXPECT_EQ(p->members[2], 8u);
    EXPECT_EQ(p->spills, 1u);
    EXPECT_EQ(p->faultIns, 1u);
    EXPECT_EQ(p->reclaimRungs, 1u);
    EXPECT_EQ(p->originLabel(), "stitch of 3 + post-spill remap");

    const AllocProvenance *q = ledger.alloc(10);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->phase, AllocPhase::s1ExactMatch);
    EXPECT_EQ(q->members.size(), 0u);
    EXPECT_EQ(q->spills, 0u);
}

TEST(ObsLedger, FailedAllocationsAreNotPinned)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("alloc");
    // a0 = 0 marks a failed allocate() span.
    rec.span(EvName::alloc, EventCat::alloc, track, 100, 10, 0,
             1 << 30, 77);
    const Ledger ledger = Ledger::build(rec.snapshot());
    EXPECT_EQ(ledger.allocCount(), 0u);
}

TEST(ObsLedger, BindingIntervalsAndLiveAt)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("engine");

    // tensor 1 bound to alloc 7 over [100, 500); tensor 2 bound to
    // alloc 8 at 300, never freed; tensor 1 rebound to alloc 9 at
    // 600.
    rec.instant(EvName::tensorBind, EventCat::engine, track, 100, 1,
                7, 4 << 20);
    rec.instant(EvName::tensorBind, EventCat::engine, track, 300, 2,
                8, 2 << 20);
    rec.instant(EvName::tensorFree, EventCat::engine, track, 500, 1,
                7);
    rec.instant(EvName::tensorBind, EventCat::engine, track, 600, 1,
                9, 4 << 20);

    const Ledger ledger = Ledger::build(rec.snapshot());
    EXPECT_EQ(ledger.bindingCount(), 3u);

    const auto t1 = ledger.tensor(1);
    ASSERT_EQ(t1.size(), 2u);
    EXPECT_EQ(t1[0]->allocId, 7u);
    EXPECT_EQ(t1[0]->boundAt, 100u);
    EXPECT_EQ(t1[0]->freedAt, 500u);
    EXPECT_EQ(t1[1]->allocId, 9u);
    EXPECT_EQ(t1[1]->freedAt, ~std::uint64_t{0});

    // Interval semantics: live on [boundAt, freedAt).
    EXPECT_TRUE(t1[0]->liveAt(100));
    EXPECT_TRUE(t1[0]->liveAt(499));
    EXPECT_FALSE(t1[0]->liveAt(500));
    EXPECT_FALSE(t1[0]->liveAt(99));

    const auto live400 = ledger.liveAt(400);
    ASSERT_EQ(live400.size(), 2u);
    EXPECT_EQ(live400[0]->tensor, 1u);
    EXPECT_EQ(live400[1]->tensor, 2u);

    const auto live550 = ledger.liveAt(550);
    ASSERT_EQ(live550.size(), 1u);
    EXPECT_EQ(live550[0]->tensor, 2u);

    EXPECT_TRUE(ledger.tensor(99).empty());
}

TEST(ObsLedger, ReportsNameUnknownProvenance)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("engine");
    // A binding whose allocation predates tracing: report must say
    // so instead of inventing provenance.
    rec.instant(EvName::tensorBind, EventCat::engine, track, 100, 4,
                123, 1 << 20);
    const Ledger ledger = Ledger::build(rec.snapshot());
    std::ostringstream out;
    ledger.reportTensor(out, 4);
    EXPECT_NE(out.str().find("no provenance recorded"),
              std::string::npos);
    std::ostringstream missing;
    ledger.reportTensor(missing, 5);
    EXPECT_NE(missing.str().find("never bound"), std::string::npos);
}

TEST(ObsLedger, OriginLabels)
{
    AllocProvenance p;
    p.phase = AllocPhase::smallPath;
    EXPECT_EQ(p.originLabel(), "small-path");
    p.phase = AllocPhase::s1ExactMatch;
    EXPECT_EQ(p.originLabel(), "cache reuse");
    p.phase = AllocPhase::s4Insufficient;
    EXPECT_EQ(p.originLabel(), "fresh reserve");
    p.members = {1, 2};
    EXPECT_EQ(p.originLabel(), "stitch of 2");
    p.phase = AllocPhase::s3MultiBlocks;
    p.members = {1, 2, 3};
    p.faultIns = 1;
    EXPECT_EQ(p.originLabel(), "stitch of 3 + post-spill remap");
}
