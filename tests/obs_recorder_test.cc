/**
 * @file
 * obs::Recorder unit tests: null-sink default, deterministic merge
 * order, bounded rings with counted drops, blob payload round-trips,
 * track interning across runs, and scope-token scoping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/recorder.hh"

using namespace gmlake;
using namespace gmlake::obs;

TEST(ObsRecorder, NullSinkByDefault)
{
    // No recorder installed: every instrumentation site sees null
    // and takes the skip branch.
    EXPECT_EQ(obs::active(), nullptr);

    Recorder rec;
    rec.activate();
    EXPECT_EQ(obs::active(), &rec);
    rec.deactivate();
    EXPECT_EQ(obs::active(), nullptr);
}

TEST(ObsRecorder, DeactivatesOnDestruction)
{
    {
        Recorder rec;
        rec.activate();
        EXPECT_EQ(obs::active(), &rec);
    }
    // A destroyed recorder must never be reachable through the sink.
    EXPECT_EQ(obs::active(), nullptr);
}

TEST(ObsRecorder, SnapshotSortsBySimTimeThenSeq)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("t");

    // Emitted out of simulated-time order on one thread.
    rec.instant(EvName::iterationMark, EventCat::engine, track, 300,
                3);
    rec.instant(EvName::iterationMark, EventCat::engine, track, 100,
                1);
    rec.instant(EvName::iterationMark, EventCat::engine, track, 200,
                2);
    // Equal timestamps keep per-thread emission (seq) order.
    rec.instant(EvName::iterationMark, EventCat::engine, track, 200,
                4);

    const RecorderSnapshot snap = rec.snapshot();
    ASSERT_EQ(snap.events.size(), 4u);
    EXPECT_EQ(snap.events[0].a0, 1u);
    EXPECT_EQ(snap.events[1].a0, 2u);
    EXPECT_EQ(snap.events[2].a0, 4u);
    EXPECT_EQ(snap.events[3].a0, 3u);
    EXPECT_EQ(snap.dropped, 0u);
}

TEST(ObsRecorder, RingBoundDropsAndCounts)
{
    RecorderOptions options;
    options.ringCapacity = 8;
    Recorder rec(options);
    rec.beginRun("r");
    const std::uint32_t track = rec.track("t");

    for (std::uint64_t i = 0; i < 20; ++i)
        rec.instant(EvName::iterationMark, EventCat::engine, track,
                    i);

    EXPECT_EQ(rec.dropped(), 12u);
    const RecorderSnapshot snap = rec.snapshot();
    EXPECT_EQ(snap.events.size(), 8u);
    EXPECT_EQ(snap.dropped, 12u);
    // The ring keeps the head, not a random subset.
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(snap.events[i].simTime, i);
}

TEST(ObsRecorder, BlobPayloadRoundTrips)
{
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("t");

    const std::uint64_t members[] = {11, 22, 33};
    Event e;
    e.simTime = 5;
    e.track = track;
    e.name = EvName::stitch;
    e.kind = EventKind::instant;
    e.cat = EventCat::alloc;
    e.a0 = 7;
    rec.emitWithBlob(e, members, 3);
    rec.instant(EvName::iterationMark, EventCat::engine, track, 6);

    const RecorderSnapshot snap = rec.snapshot();
    ASSERT_EQ(snap.events.size(), 2u);
    const Event &stitch = snap.events[0];
    ASSERT_EQ(stitch.blobLen, 3u);
    const std::uint64_t *words = snap.blobOf(stitch);
    ASSERT_NE(words, nullptr);
    EXPECT_EQ(words[0], 11u);
    EXPECT_EQ(words[1], 22u);
    EXPECT_EQ(words[2], 33u);
    // The non-blob event resolves to nothing.
    EXPECT_EQ(snap.blobOf(snap.events[1]), nullptr);
}

TEST(ObsRecorder, BlobBoundDropsWholeRecord)
{
    RecorderOptions options;
    options.blobCapacity = 4;
    Recorder rec(options);
    rec.beginRun("r");
    const std::uint32_t track = rec.track("t");

    const std::uint64_t words[] = {1, 2, 3};
    Event e;
    e.track = track;
    e.name = EvName::stitch;
    e.cat = EventCat::alloc;
    rec.emitWithBlob(e, words, 3);   // fits (3 of 4)
    rec.emitWithBlob(e, words, 3);   // would overflow: dropped whole
    const RecorderSnapshot snap = rec.snapshot();
    EXPECT_EQ(snap.events.size(), 1u);
    EXPECT_EQ(snap.dropped, 1u);
}

TEST(ObsRecorder, MultiThreadMergeIsDeterministic)
{
    // Four threads, interleaved simulated timestamps: the merged
    // stream must be sorted by simTime regardless of host
    // scheduling, and hold every record.
    Recorder rec;
    rec.beginRun("r");
    const std::uint32_t track = rec.track("t");

    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&rec, track, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                // Distinct times across threads: t, kThreads+t, ...
                const std::uint64_t at =
                    i * kThreads + static_cast<std::uint64_t>(t);
                rec.instant(EvName::iterationMark, EventCat::engine,
                            track, at, at);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();

    const RecorderSnapshot snap = rec.snapshot();
    ASSERT_EQ(snap.events.size(), kThreads * kPerThread);
    EXPECT_EQ(snap.dropped, 0u);
    for (std::size_t i = 0; i < snap.events.size(); ++i)
        EXPECT_EQ(snap.events[i].simTime, i) << i;
}

TEST(ObsRecorder, TrackInterningIsStableWithinARun)
{
    Recorder rec;
    rec.beginRun("first");
    const std::uint32_t a = rec.track("device");
    const std::uint32_t b = rec.track("alloc");
    EXPECT_NE(a, b);
    EXPECT_EQ(rec.track("device"), a);

    const std::uint64_t gen = rec.generation();
    rec.beginRun("second");
    // A new run invalidates cached ids: same name, fresh track bound
    // to the new run.
    EXPECT_GT(rec.generation(), gen);
    const std::uint32_t a2 = rec.track("device");
    EXPECT_NE(a2, a);

    const RecorderSnapshot snap = rec.snapshot();
    ASSERT_EQ(snap.runs.size(), 2u);
    EXPECT_EQ(snap.runs[0], "first");
    EXPECT_EQ(snap.runs[1], "second");
    ASSERT_GT(snap.tracks.size(), a2);
    EXPECT_EQ(snap.tracks[a].run, 0u);
    EXPECT_EQ(snap.tracks[a2].run, 1u);
    EXPECT_EQ(snap.tracks[a].name, "device");
    EXPECT_EQ(snap.tracks[a2].name, "device");
}

TEST(ObsRecorder, ScopeTokensNestAndRestore)
{
    EXPECT_EQ(obs::scopeToken(), 0u);
    {
        ScopeToken outer(7);
        EXPECT_EQ(obs::scopeToken(), 7u);
        {
            ScopeToken inner(9);
            EXPECT_EQ(obs::scopeToken(), 9u);
        }
        EXPECT_EQ(obs::scopeToken(), 7u);
    }
    EXPECT_EQ(obs::scopeToken(), 0u);

    Recorder rec;
    const std::uint64_t t1 = rec.nextScopeToken();
    const std::uint64_t t2 = rec.nextScopeToken();
    EXPECT_NE(t1, 0u);
    EXPECT_NE(t2, t1);
}
