# GMLAKE_SANITIZE=address|undefined|thread|leak (comma-separated).
# Applied globally so first-party code and test binaries agree on the
# runtime; ThreadSanitizer cannot be combined with the others.

if (NOT GMLAKE_SANITIZE)
    return()
endif ()

string(REPLACE "," ";" _gmlake_sanitizers "${GMLAKE_SANITIZE}")

set(_gmlake_known address undefined thread leak)
foreach (_san IN LISTS _gmlake_sanitizers)
    if (NOT _san IN_LIST _gmlake_known)
        message(FATAL_ERROR
            "GMLAKE_SANITIZE: unknown sanitizer '${_san}' "
            "(expected address, undefined, thread, or leak)")
    endif ()
endforeach ()

if ("thread" IN_LIST _gmlake_sanitizers AND
    NOT GMLAKE_SANITIZE STREQUAL "thread")
    message(FATAL_ERROR
        "GMLAKE_SANITIZE: thread cannot be combined with other "
        "sanitizers")
endif ()

string(REPLACE ";" "," _gmlake_fsanitize "${_gmlake_sanitizers}")
message(STATUS "GMLake: sanitizers enabled: ${_gmlake_fsanitize}")

add_compile_options(-fsanitize=${_gmlake_fsanitize}
    -fno-omit-frame-pointer -g)
add_link_options(-fsanitize=${_gmlake_fsanitize})
