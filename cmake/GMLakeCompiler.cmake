# Per-target compiler defaults for first-party code. Third-party code
# (googletest, google-benchmark) is built with its own flags so our
# -Werror policy cannot break it.

function(gmlake_target_defaults target)
    target_compile_features(${target} PUBLIC cxx_std_20)
    set_target_properties(${target} PROPERTIES
        CXX_STANDARD_REQUIRED ON
        CXX_EXTENSIONS OFF)
    if (MSVC)
        target_compile_options(${target} PRIVATE /W4
            $<$<BOOL:${GMLAKE_WERROR}>:/WX>)
    else ()
        target_compile_options(${target} PRIVATE -Wall -Wextra
            $<$<BOOL:${GMLAKE_WERROR}>:-Werror>)
    endif ()
endfunction()

# Declare one of the gmlake_* static libraries rooted at src/.
#
#   gmlake_add_library(gmlake_vmm SOURCES ... DEPS gmlake_support)
function(gmlake_add_library name)
    cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
    add_library(${name} STATIC ${ARG_SOURCES})
    add_library(gmlake::${name} ALIAS ${name})
    gmlake_target_defaults(${name})
    target_include_directories(${name} PUBLIC
        $<BUILD_INTERFACE:${PROJECT_SOURCE_DIR}/src>
        $<INSTALL_INTERFACE:${CMAKE_INSTALL_INCLUDEDIR}/gmlake>)
    if (ARG_DEPS)
        target_link_libraries(${name} PUBLIC ${ARG_DEPS})
    endif ()
endfunction()
