# googletest acquisition and the gmlake_add_test() helper.
#
# googletest comes from FetchContent by default; on machines without
# network access (or to pin a system copy) a vendored source tree is
# used instead:
#
#   GMLAKE_VENDORED_GTEST=AUTO   use GMLAKE_GTEST_VENDOR_DIR when it
#                                exists, FetchContent otherwise (default)
#   GMLAKE_VENDORED_GTEST=ON     require the vendored tree
#   GMLAKE_VENDORED_GTEST=OFF    always FetchContent

set(GMLAKE_VENDORED_GTEST "AUTO" CACHE STRING
    "Use a local googletest source tree instead of FetchContent (ON/OFF/AUTO)")
set(GMLAKE_GTEST_VENDOR_DIR "/usr/src/googletest" CACHE PATH
    "Location of the vendored googletest source tree (Debian: libgtest-dev)")

set(_gmlake_use_vendored OFF)
if (GMLAKE_VENDORED_GTEST STREQUAL "ON")
    if (NOT EXISTS "${GMLAKE_GTEST_VENDOR_DIR}/CMakeLists.txt")
        message(FATAL_ERROR
            "GMLAKE_VENDORED_GTEST=ON but no googletest tree at "
            "${GMLAKE_GTEST_VENDOR_DIR}")
    endif ()
    set(_gmlake_use_vendored ON)
elseif (GMLAKE_VENDORED_GTEST STREQUAL "AUTO" AND
        EXISTS "${GMLAKE_GTEST_VENDOR_DIR}/CMakeLists.txt")
    set(_gmlake_use_vendored ON)
endif ()

set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)

if (_gmlake_use_vendored)
    message(STATUS
        "GMLake: googletest from ${GMLAKE_GTEST_VENDOR_DIR}")
    if (CMAKE_VERSION VERSION_GREATER_EQUAL 3.25)
        add_subdirectory("${GMLAKE_GTEST_VENDOR_DIR}"
            "${CMAKE_BINARY_DIR}/_deps/googletest-build"
            EXCLUDE_FROM_ALL SYSTEM)
    else ()
        add_subdirectory("${GMLAKE_GTEST_VENDOR_DIR}"
            "${CMAKE_BINARY_DIR}/_deps/googletest-build"
            EXCLUDE_FROM_ALL)
    endif ()
else ()
    message(STATUS "GMLake: googletest via FetchContent")
    include(FetchContent)
    FetchContent_Declare(googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    FetchContent_MakeAvailable(googletest)
endif ()

# Older gtest trees (e.g. Debian's 1.12 sources built as a
# subdirectory) may define only the plain targets, not the GTest::
# namespace the rest of the build links against.
if (NOT TARGET GTest::gtest_main AND TARGET gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
endif ()
if (NOT TARGET GTest::gtest AND TARGET gtest)
    add_library(GTest::gtest ALIAS gtest)
endif ()

# Register one gtest suite as a build target and a labelled CTest
# test:
#
#   gmlake_add_test(NAME core_gmlake_test
#                   SOURCES core_gmlake_test.cc
#                   LABELS unit
#                   [DEPS extra_lib ...])
#
# Run subsets with e.g. `ctest -L unit` / `ctest -L regression`.
function(gmlake_add_test)
    cmake_parse_arguments(ARG "" "NAME;TIMEOUT" "SOURCES;LABELS;DEPS"
        ${ARGN})
    if (NOT ARG_NAME OR NOT ARG_SOURCES)
        message(FATAL_ERROR "gmlake_add_test: NAME and SOURCES required")
    endif ()
    if (NOT ARG_TIMEOUT)
        set(ARG_TIMEOUT 600)
    endif ()
    add_executable(${ARG_NAME} ${ARG_SOURCES})
    gmlake_target_defaults(${ARG_NAME})
    target_link_libraries(${ARG_NAME} PRIVATE
        gmlake::gmlake_sim GTest::gtest_main ${ARG_DEPS})
    add_test(NAME ${ARG_NAME} COMMAND ${ARG_NAME})
    set_tests_properties(${ARG_NAME} PROPERTIES
        LABELS "${ARG_LABELS}"
        TIMEOUT ${ARG_TIMEOUT})
endfunction()
