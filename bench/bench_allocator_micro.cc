/**
 * @file
 * google-benchmark microbenchmarks of the allocator implementations'
 * host-side data-structure costs: allocate/deallocate round trips,
 * pool-search scaling, and BestFit over growing pools. These measure
 * real wall-clock time of the bookkeeping code (the simulated device
 * latencies are separate and covered by bench_table1/bench_fig6).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/caching_allocator.hh"
#include "core/best_fit.hh"
#include "core/gmlake_allocator.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "vmm/device.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

vmm::DeviceConfig
bigDevice()
{
    vmm::DeviceConfig cfg;
    cfg.capacity = 64_GiB;
    return cfg;
}

void
BM_CachingAllocateFree(benchmark::State &state)
{
    vmm::Device dev(bigDevice());
    alloc::CachingAllocator allocator(dev);
    const Bytes size = static_cast<Bytes>(state.range(0));
    // Warm the pool so the loop measures cache hits.
    const auto warm = allocator.allocate(size);
    (void)allocator.deallocate(warm->id);
    for (auto _ : state) {
        const auto a = allocator.allocate(size);
        benchmark::DoNotOptimize(a.value().addr);
        (void)allocator.deallocate(a->id);
    }
}
BENCHMARK(BM_CachingAllocateFree)->Arg(4096)->Arg(2_MiB)->Arg(64_MiB);

void
BM_GmlakeAllocateFree(benchmark::State &state)
{
    vmm::Device dev(bigDevice());
    core::GMLakeAllocator allocator(dev);
    const Bytes size = static_cast<Bytes>(state.range(0));
    const auto warm = allocator.allocate(size);
    (void)allocator.deallocate(warm->id);
    for (auto _ : state) {
        const auto a = allocator.allocate(size);
        benchmark::DoNotOptimize(a.value().addr);
        (void)allocator.deallocate(a->id);
    }
}
BENCHMARK(BM_GmlakeAllocateFree)->Arg(4096)->Arg(2_MiB)->Arg(64_MiB);

void
BM_GmlakeStitchPath(benchmark::State &state)
{
    // Force the S3 stitch path every iteration: two cached fragments
    // serve one double-size request, which is then torn back down.
    vmm::Device dev(bigDevice());
    core::GMLakeConfig gc;
    gc.restitchOnSplit = false;
    gc.maxCachedSBlocks = 1; // evict immediately: always re-stitch
    core::GMLakeAllocator allocator(dev, gc);

    const auto a = allocator.allocate(16_MiB);
    const auto spacer = allocator.allocate(2_MiB);
    const auto b = allocator.allocate(16_MiB);
    (void)spacer;
    (void)allocator.deallocate(a->id);
    (void)allocator.deallocate(b->id);

    for (auto _ : state) {
        const auto big = allocator.allocate(32_MiB);
        benchmark::DoNotOptimize(big.value().addr);
        (void)allocator.deallocate(big->id);
    }
    state.counters["stitches"] = static_cast<double>(
        allocator.strategy().stitches);
}
BENCHMARK(BM_GmlakeStitchPath);

void
BM_BestFitScaling(benchmark::State &state)
{
    // BestFit over an inactive pool of the given size.
    Rng rng(42);
    std::vector<Bytes> pool;
    for (int i = 0; i < state.range(0); ++i)
        pool.push_back(2_MiB * rng.uniformInt(1, 256));
    std::sort(pool.rbegin(), pool.rend());
    const Bytes want = 2_MiB * 300; // forces a full scan
    for (auto _ : state) {
        const auto r = core::bestFit(want, {}, pool, 0);
        benchmark::DoNotOptimize(r.candidateBytes);
    }
}
BENCHMARK(BM_BestFitScaling)->Arg(64)->Arg(512)->Arg(4096);

void
BM_MappingsInScratch(benchmark::State &state)
{
    // Range queries over a deeply chunked mapping table: the
    // caller-provided scratch overload performs no allocation per
    // call, unlike the returning overload it replaced on the
    // device's hot paths.
    vmm::Device dev(bigDevice());
    const std::size_t chunks = static_cast<std::size_t>(state.range(0));
    const auto va = dev.memAddressReserve(chunks * 2_MiB);
    for (std::size_t i = 0; i < chunks; ++i) {
        const auto h = dev.memCreate(2_MiB);
        (void)dev.memMap(*va + static_cast<VirtAddr>(i) * 2_MiB, *h);
    }
    (void)dev.memSetAccess(*va, chunks * 2_MiB);

    std::vector<vmm::MappingTable::Entry> scratch;
    for (auto _ : state) {
        dev.mappings().mappingsIn(*va, chunks * 2_MiB, scratch);
        benchmark::DoNotOptimize(scratch.size());
    }
    state.counters["chunks"] = static_cast<double>(chunks);
}
BENCHMARK(BM_MappingsInScratch)->Arg(16)->Arg(256)->Arg(1024);

void
BM_MappingSnapshotRead(benchmark::State &state)
{
    // Range stats against an epoch-published immutable snapshot: the
    // lock-free read path concurrent replay threads use instead of
    // querying the live tree under the device state lock. The flat
    // upper_bound arrays should beat the tree walk at every depth.
    vmm::Device dev(bigDevice());
    const std::size_t chunks = static_cast<std::size_t>(state.range(0));
    const auto va = dev.memAddressReserve(chunks * 2_MiB);
    for (std::size_t i = 0; i < chunks; ++i) {
        const auto h = dev.memCreate(2_MiB);
        (void)dev.memMap(*va + static_cast<VirtAddr>(i) * 2_MiB, *h);
    }
    (void)dev.memSetAccess(*va, chunks * 2_MiB);

    const auto snap = dev.mappingSnapshot();
    // Sweep the query window across the range so the upper_bound
    // probe position varies instead of staying cache-hot on one spot.
    VirtAddr cursor = *va;
    const VirtAddr end = *va + chunks * 2_MiB;
    for (auto _ : state) {
        const auto stats = snap->rangeStats(cursor, 16_MiB);
        benchmark::DoNotOptimize(stats.bytes);
        cursor += 2_MiB;
        if (cursor >= end)
            cursor = *va;
    }
    state.counters["chunks"] = static_cast<double>(chunks);
    state.counters["epoch"] = static_cast<double>(snap->epoch());
}
BENCHMARK(BM_MappingSnapshotRead)->Arg(16)->Arg(256)->Arg(1024);

void
BM_ShardedPoolAlloc(benchmark::State &state)
{
    // Cache-hit allocate/free churn spread over N stream-tagged pool
    // shards. Single-threaded this measures the shard map + per-shard
    // mutex overhead of the fast path; the sharding's concurrency win
    // is covered by the engine-level thread-scaling runs.
    vmm::Device dev(bigDevice());
    alloc::CachingAllocator allocator(dev);
    const StreamId streams = static_cast<StreamId>(state.range(0));
    // Warm one cached block per stream so the loop never maps.
    for (StreamId s = 0; s < streams; ++s) {
        const auto warm = allocator.allocate(2_MiB, s);
        (void)allocator.deallocate(warm->id);
    }
    StreamId s = 0;
    for (auto _ : state) {
        const auto a = allocator.allocate(2_MiB, s);
        benchmark::DoNotOptimize(a.value().addr);
        (void)allocator.deallocate(a->id);
        s = (s + 1) % streams;
    }
    state.counters["streams"] = static_cast<double>(streams);
    state.counters["lock_wait_ns"] =
        static_cast<double>(allocator.lockWaitNs());
}
BENCHMARK(BM_ShardedPoolAlloc)->Arg(1)->Arg(4)->Arg(16);

void
BM_DeviceStitchTeardown(benchmark::State &state)
{
    // One batched map + one unmap of an sBlock-shaped range: the
    // extent table makes both O(extents), not O(chunks)-tree-ops.
    vmm::Device dev(bigDevice());
    const std::size_t chunks = static_cast<std::size_t>(state.range(0));
    std::vector<PhysHandle> handles;
    for (std::size_t i = 0; i < chunks; ++i)
        handles.push_back(*dev.memCreate(2_MiB));
    const auto va = dev.memAddressReserve(chunks * 2_MiB);
    std::vector<std::pair<VirtAddr, PhysHandle>> batch(chunks);
    for (auto _ : state) {
        for (std::size_t i = 0; i < chunks; ++i) {
            batch[i] = {*va + static_cast<VirtAddr>(i) * 2_MiB,
                        handles[i]};
        }
        benchmark::DoNotOptimize(dev.memMapBatch(batch).ok());
        benchmark::DoNotOptimize(
            dev.memUnmap(*va, chunks * 2_MiB).ok());
    }
    state.counters["chunks"] = static_cast<double>(chunks);
}
BENCHMARK(BM_DeviceStitchTeardown)->Arg(64)->Arg(1024);

void
BM_TraceGeneration(benchmark::State &state)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 16;
    cfg.iterations = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto trace = workload::generateTrainingTrace(cfg);
        benchmark::DoNotOptimize(trace.size());
    }
}
BENCHMARK(BM_TraceGeneration)->Arg(1)->Arg(8);

} // namespace

BENCHMARK_MAIN();
