/**
 * @file
 * Figure 5: allocation-stream statistics of GPT-NeoX-20B training,
 * original vs LoRA+recomputation. Paper: the original run makes
 * ~46 k allocations averaging ~93 MB; with LR the stream grows to
 * ~76 k allocations averaging ~85 MB — more frequent and smaller.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig5", argc, argv);
}
