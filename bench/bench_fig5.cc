/**
 * @file
 * Figure 5: allocation-stream statistics of GPT-NeoX-20B training,
 * original vs LoRA+recomputation. Paper: the original run makes
 * ~46 k allocations averaging ~93 MB; with LR the stream grows to
 * ~76 k allocations averaging ~85 MB — more frequent and smaller.
 */

#include "bench/common.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 5 — allocation stream shape, original vs LR "
           "(GPT-NeoX-20B)",
           "Paper: 46k allocations @ 93 MB avg vs 76k @ 85 MB — "
           "strategies make requests more frequent and smaller");

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.gpus = 4;
    cfg.batchSize = 24;
    // The paper's counts cover a full training job; the per-iteration
    // shape is what matters, so scale to a fixed iteration budget.
    cfg.iterations = 40;

    Table table({"Configuration", "Allocations", "Avg size",
                 "Max size", "Allocs/iteration"});
    for (const char *strat : {"N", "LR"}) {
        cfg.strategies = workload::Strategies::parse(strat);
        const auto trace = workload::generateTrainingTrace(cfg);
        const auto &s = trace.stats();
        table.addRow(
            {std::string("GPT-NeoX-20B ") +
                 (std::string(strat) == "N" ? "original" : "+LR"),
             std::to_string(s.allocCount),
             formatBytes(static_cast<Bytes>(s.avgAllocBytes())),
             formatBytes(s.maxAllocBytes),
             std::to_string(s.allocCount /
                            static_cast<std::uint64_t>(
                                s.iterations))});
    }
    table.print(std::cout);

    std::cout << "\nSize histogram (+LR):\n";
    cfg.strategies = workload::Strategies::parse("LR");
    const auto trace = workload::generateTrainingTrace(cfg);
    std::cout << trace.sizeHistogram().render();
    return 0;
}
