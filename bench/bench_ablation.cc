/**
 * @file
 * Ablation of GMLake's design knobs (Section 4.2 discussion):
 *  - fragmentation limit sweep (efficiency vs memory trade-off)
 *  - stitching on/off (the core mechanism)
 *  - re-stitch after split on/off
 *  - near-match tolerance sweep (pattern-tape stability)
 *  - StitchFree cache-size sweep
 */

#include "bench/common.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::bench;
using namespace gmlake::literals;

namespace
{

workload::TrainConfig
workloadConfig()
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 16;
    cfg.iterations = 12;
    return cfg;
}

void
runRow(Table &table, const std::string &label,
       const core::GMLakeConfig &gc)
{
    sim::ScenarioOptions opts;
    opts.gmlake = gc;
    const auto r = sim::runScenario(workloadConfig(),
                                    sim::AllocatorKind::gmlake, opts);
    table.addRow({label, formatPercent(r.utilization),
                  gb(r.peakReserved) + " GB",
                  formatDouble(r.samplesPerSec, 2),
                  formatTime(r.deviceApiTime)});
}

} // namespace

int
main()
{
    banner("Ablation — GMLake design knobs (OPT-13B, LR, 4 GPUs)",
           "Trade-offs the paper discusses in Sections 4.2.2/4.2.3");

    {
        std::cout << "\nFragmentation limit sweep:\n";
        Table table({"fragLimit", "Utilization", "Peak reserved",
                     "Thr (s/s)", "Device API time"});
        for (const Bytes limit :
             {2_MiB, 8_MiB, 16_MiB, 32_MiB, 64_MiB, 128_MiB}) {
            core::GMLakeConfig gc;
            gc.fragLimit = limit;
            runRow(table, formatBytes(limit), gc);
        }
        table.print(std::cout);
    }

    {
        std::cout << "\nStitching mechanism:\n";
        Table table({"Configuration", "Utilization", "Peak reserved",
                     "Thr (s/s)", "Device API time"});
        core::GMLakeConfig on;
        runRow(table, "stitching on (default)", on);
        core::GMLakeConfig off;
        off.enableStitching = false;
        runRow(table, "stitching off", off);
        core::GMLakeConfig noRestitch;
        noRestitch.restitchOnSplit = false;
        runRow(table, "no re-stitch after split", noRestitch);
        table.print(std::cout);
    }

    {
        std::cout << "\nNear-match tolerance sweep:\n";
        Table table({"Tolerance", "Utilization", "Peak reserved",
                     "Thr (s/s)", "Device API time"});
        for (const double tol : {0.0, 0.05, 0.125, 0.25}) {
            core::GMLakeConfig gc;
            gc.nearMatchTolerance = tol;
            runRow(table, formatPercent(tol, 1), gc);
        }
        table.print(std::cout);
    }

    {
        std::cout << "\nStitchFree cache-limit sweep:\n";
        Table table({"maxCachedSBlocks", "Utilization",
                     "Peak reserved", "Thr (s/s)",
                     "Device API time"});
        for (const std::size_t cap : {8UL, 64UL, 512UL, 8192UL}) {
            core::GMLakeConfig gc;
            gc.maxCachedSBlocks = cap;
            runRow(table, std::to_string(cap), gc);
        }
        table.print(std::cout);
    }
    return 0;
}
