/**
 * @file
 * Ablation of GMLake's design knobs (Section 4.2 discussion):
 *  - fragmentation limit sweep (efficiency vs memory trade-off)
 *  - stitching on/off (the core mechanism)
 *  - re-stitch after split on/off
 *  - near-match tolerance sweep (pattern-tape stability)
 *  - StitchFree cache-size sweep
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("ablation", argc, argv);
}
