/**
 * @file
 * Host-offload tier under true oversubscription: four tenants whose
 * combined resident sets reach 1.5x the device capacity. Without the
 * tier the device kills tenants; with it GMLake spills whole pBlocks
 * to host via unmap/remap of the existing stitched VA and faults
 * them back on touch (prefetch hints hide the H2D latency). The
 * companion `serve-burst-offload` scenario covers the spiky-serving
 * shape: `gmlake_sim run serve-burst-offload`.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("oversub-offload", argc, argv);
}
