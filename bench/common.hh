/**
 * @file
 * Thin adapter between the bench_* wrapper binaries and the shared
 * experiment registry (src/sim/experiment.hh). Every scenario —
 * workload sweep, allocator set, table layout — lives in
 * src/sim/registry.cc; a bench binary just names which scenario it
 * runs, so `bench_fig10` and `gmlake_sim run fig10` are the same
 * code path.
 */

#ifndef GMLAKE_BENCH_COMMON_HH
#define GMLAKE_BENCH_COMMON_HH

#include <string>

#include "sim/experiment.hh"

namespace gmlake::bench
{

/** Standard main() body: run @p scenario with the shared CLI. */
inline int
benchMain(const std::string &scenario, int argc, char **argv)
{
    return sim::experimentMain(scenario, argc, argv);
}

} // namespace gmlake::bench

#endif // GMLAKE_BENCH_COMMON_HH
