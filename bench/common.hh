/**
 * @file
 * Shared helpers for the experiment harnesses: one banner format and
 * a couple of row formatters so every bench prints comparable output.
 */

#ifndef GMLAKE_BENCH_COMMON_HH
#define GMLAKE_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/tracegen.hh"

namespace gmlake::bench
{

inline void
banner(const std::string &experiment, const std::string &claim)
{
    std::cout << "\n==================================================="
                 "=====================\n"
              << experiment << "\n" << claim << "\n"
              << "====================================================="
                 "===================\n";
}

inline std::string
gb(Bytes bytes)
{
    return formatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0 *
                                                      1024.0),
                        1);
}

inline std::string
oomOr(const sim::RunResult &r, const std::string &value)
{
    return r.oom ? "OOM" : value;
}

/** Run the scenario under both allocators of interest. */
struct Pair
{
    sim::RunResult caching;
    sim::RunResult gmlake;
};

inline Pair
runPair(const workload::TrainConfig &config,
        const sim::ScenarioOptions &options = {})
{
    return Pair{
        sim::runScenario(config, sim::AllocatorKind::caching, options),
        sim::runScenario(config, sim::AllocatorKind::gmlake, options),
    };
}

} // namespace gmlake::bench

#endif // GMLAKE_BENCH_COMMON_HH
