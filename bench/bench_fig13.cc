/**
 * @file
 * Figure 13: end-to-end batch-size sweeps for OPT-1.3B, OPT-13B and
 * GPT-NeoX-20B (LoRA + recomputation + ZeRO-3, four GPUs): reserved
 * memory, utilization and throughput, with the baseline hitting OOM
 * at large batches while GMLake keeps running.
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 13 — batch-size sweep, caching vs GMLake "
           "(LR + ZeRO-3, 4 GPUs)",
           "Paper: GMLake sustains larger batches (baseline OOMs "
           "first) at equal or better throughput");

    const struct
    {
        const char *model;
        std::vector<int> batches;
    } sweeps[] = {
        {"OPT-1.3B", {1, 32, 64, 128, 192, 224, 249}},
        {"OPT-13B", {1, 20, 40, 60, 80, 100, 120}},
        {"GPT-NeoX-20B", {1, 12, 24, 36, 48, 60, 72, 84, 96, 108}},
    };

    for (const auto &sweep : sweeps) {
        std::cout << "\n--- " << sweep.model << " ---\n";
        Table table({"Batch", "RM w/o GML", "RM w/ GML",
                     "UR w/o GML", "UR w/ GML", "Thr w/o (s/s)",
                     "Thr w/ (s/s)"});
        for (const int batch : sweep.batches) {
            workload::TrainConfig cfg;
            cfg.model = workload::findModel(sweep.model);
            cfg.strategies = workload::Strategies::parse("LR");
            cfg.gpus = 4;
            cfg.batchSize = batch;
            cfg.iterations = 8;
            const auto pair = runPair(cfg);
            table.addRow(
                {std::to_string(batch),
                 oomOr(pair.caching, gb(pair.caching.peakReserved) + " GB"),
                 oomOr(pair.gmlake, gb(pair.gmlake.peakReserved) + " GB"),
                 oomOr(pair.caching,
                       formatPercent(pair.caching.utilization)),
                 oomOr(pair.gmlake,
                       formatPercent(pair.gmlake.utilization)),
                 oomOr(pair.caching,
                       formatDouble(pair.caching.samplesPerSec, 1)),
                 oomOr(pair.gmlake,
                       formatDouble(pair.gmlake.samplesPerSec, 1))});
        }
        table.print(std::cout);
    }
    return 0;
}
