/**
 * @file
 * Figure 13: end-to-end batch-size sweeps for OPT-1.3B, OPT-13B and
 * GPT-NeoX-20B (LoRA + recomputation + ZeRO-3, four GPUs): reserved
 * memory, utilization and throughput, with the baseline hitting OOM
 * at large batches while GMLake keeps running.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig13", argc, argv);
}
