/**
 * @file
 * Figure 10: reserved memory and utilization ratio with and without
 * GMLake across strategy combinations (N, R, LR, RO, LRO) for
 * OPT-13B, Vicuna-13B and GPT-NeoX-20B on four GPUs (ZeRO-3).
 * Paper: GMLake lifts utilization by ~5-24% (up to ~17 GB of
 * reserved memory saved) and keeps fragmentation at 5-10%.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig10", argc, argv);
}
