/**
 * @file
 * Figure 10: reserved memory and utilization ratio with and without
 * GMLake across strategy combinations (N, R, LR, RO, LRO) for
 * OPT-13B, Vicuna-13B and GPT-NeoX-20B on four GPUs (ZeRO-3).
 * Paper: GMLake lifts utilization by ~5-24% (up to ~17 GB of
 * reserved memory saved) and keeps fragmentation at 5-10%.
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 10 — strategy scalability, caching vs GMLake",
           "Paper: baseline fragments 5-24% under strategy combos; "
           "GMLake holds ~90%+ utilization on every one");

    const struct
    {
        const char *model;
        int batch;
    } models[] = {
        {"OPT-13B", 16}, {"Vicuna-13B", 16}, {"GPT-NeoX-20B", 12},
    };

    for (const auto &m : models) {
        std::cout << "\n--- " << m.model << " (4 GPUs, batch "
                  << m.batch << ") ---\n";
        Table table({"Strategy", "RM w/o GML", "RM w/ GML",
                     "UR w/o GML", "UR w/ GML", "Saved"});
        for (const char *strat : {"N", "R", "LR", "RO", "LRO"}) {
            workload::TrainConfig cfg;
            cfg.model = workload::findModel(m.model);
            cfg.strategies = workload::Strategies::parse(strat);
            cfg.gpus = 4;
            // N keeps full optimizer state resident; use a batch the
            // device can hold, like the paper's common batch size.
            cfg.batchSize =
                cfg.strategies.label() == "N" ? m.batch / 2 : m.batch;
            cfg.iterations = 12;
            const auto pair = runPair(cfg);
            const Bytes saved =
                pair.caching.peakReserved > pair.gmlake.peakReserved
                    ? pair.caching.peakReserved -
                          pair.gmlake.peakReserved
                    : 0;
            table.addRow(
                {strat, oomOr(pair.caching, gb(pair.caching.peakReserved) + " GB"),
                 oomOr(pair.gmlake, gb(pair.gmlake.peakReserved) + " GB"),
                 oomOr(pair.caching, formatPercent(pair.caching.utilization)),
                 oomOr(pair.gmlake, formatPercent(pair.gmlake.utilization)),
                 gb(saved) + " GB"});
        }
        table.print(std::cout);
    }
    return 0;
}
