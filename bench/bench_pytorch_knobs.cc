/**
 * @file
 * Extension experiment: how far do PyTorch's own allocator tuning
 * knobs (max_split_size_mb, roundup_power2_divisions,
 * garbage_collection_threshold) go against the fragmentation the
 * paper characterizes — versus simply switching to GMLake?
 *
 * This was the practitioner's playbook before virtual-memory-based
 * allocators (GMLake, and later PyTorch's own expandable_segments)
 * made the tuning unnecessary.
 */

#include "alloc/caching_allocator.hh"
#include "core/gmlake_allocator.hh"

#include "bench/common.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::bench;
using namespace gmlake::literals;

namespace
{

sim::RunResult
runCaching(const workload::TrainConfig &cfg,
           const alloc::CachingConfig &knobs)
{
    vmm::Device device;
    alloc::CachingAllocator allocator(device, knobs);
    const auto trace = workload::generateTrainingTrace(cfg);
    return sim::runTrace(allocator, device, trace, &cfg);
}

} // namespace

int
main()
{
    banner("Extension — PyTorch allocator knobs vs GMLake",
           "Tuning the caching allocator recovers part of the "
           "fragmentation; stitching removes it");

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 48;
    cfg.iterations = 10;

    Table table({"Configuration", "Utilization", "Peak reserved",
                 "Thr (s/s)"});
    auto row = [&](const std::string &label,
                   const sim::RunResult &r) {
        table.addRow({label,
                      r.oom ? "OOM" : formatPercent(r.utilization),
                      r.oom ? "OOM" : gb(r.peakReserved) + " GB",
                      formatDouble(r.samplesPerSec, 2)});
    };

    row("caching, defaults", runCaching(cfg, {}));
    {
        alloc::CachingConfig knobs;
        knobs.maxSplitSize = 256_MiB;
        row("caching, max_split_size=256MB", runCaching(cfg, knobs));
    }
    {
        alloc::CachingConfig knobs;
        knobs.roundupPower2Divisions = 8;
        row("caching, roundup_power2_divisions=8",
            runCaching(cfg, knobs));
    }
    {
        alloc::CachingConfig knobs;
        knobs.gcThreshold = 0.7;
        row("caching, gc_threshold=0.7", runCaching(cfg, knobs));
    }
    {
        alloc::CachingConfig knobs;
        knobs.maxSplitSize = 256_MiB;
        knobs.roundupPower2Divisions = 8;
        knobs.gcThreshold = 0.7;
        row("caching, all three knobs", runCaching(cfg, knobs));
    }
    row("gmlake, defaults",
        sim::runScenario(cfg, sim::AllocatorKind::gmlake));
    table.print(std::cout);
    return 0;
}
