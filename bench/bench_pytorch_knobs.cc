/**
 * @file
 * Extension experiment: how far do PyTorch's own allocator tuning
 * knobs (max_split_size_mb, roundup_power2_divisions,
 * garbage_collection_threshold) go against the fragmentation the
 * paper characterizes — versus simply switching to GMLake?
 *
 * This was the practitioner's playbook before virtual-memory-based
 * allocators (GMLake, and later PyTorch's own expandable_segments)
 * made the tuning unnecessary.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("pytorch-knobs", argc, argv);
}
