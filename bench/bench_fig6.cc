/**
 * @file
 * Figure 6: allocation latency of the native allocator vs the virtual
 * memory allocator for 512 MB / 1 GB / 2 GB blocks over internal
 * chunk sizes from 2 MB to 1 GB. The headline point is the ~115x
 * slowdown of the 2 MB-chunk VM path.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig6", argc, argv);
}
