/**
 * @file
 * Figure 6: allocation latency of the native allocator vs the virtual
 * memory allocator for 512 MB / 1 GB / 2 GB blocks over internal
 * chunk sizes from 2 MB to 1 GB. The headline point is the ~115x
 * slowdown of the 2 MB-chunk VM path.
 */

#include <vector>

#include "bench/common.hh"
#include "support/units.hh"
#include "vmm/device.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

/** Measure one VM allocation on a fresh device via the real API. */
Tick
vmAllocLatency(Bytes block, Bytes chunk)
{
    vmm::Device dev; // 80 GB
    const Tick t0 = dev.now();
    const auto va = dev.memAddressReserve(block);
    if (!va.ok())
        GMLAKE_FATAL("reserve failed");
    VirtAddr cursor = *va;
    for (Bytes done = 0; done < block; done += chunk) {
        const auto h = dev.memCreate(chunk);
        if (!h.ok())
            GMLAKE_FATAL("create failed");
        if (const auto s = dev.memMap(cursor, *h); !s.ok())
            GMLAKE_FATAL("map failed");
        cursor += chunk;
    }
    if (const auto s = dev.memSetAccess(*va, block); !s.ok())
        GMLAKE_FATAL("setAccess failed");
    return dev.now() - t0;
}

Tick
nativeLatency(Bytes block)
{
    vmm::Device dev;
    const Tick t0 = dev.now();
    const auto p = dev.mallocNative(block);
    if (!p.ok())
        GMLAKE_FATAL("cudaMalloc failed");
    return dev.now() - t0;
}

} // namespace

int
main()
{
    bench::banner("Figure 6 — native vs virtual-memory allocation "
                  "latency",
                  "Paper: VM allocator with 2 MB chunks is ~115x "
                  "slower than cudaMalloc; gap closes as chunks grow");

    const std::vector<Bytes> blocks = {512_MiB, 1024_MiB, 2_GiB};
    const std::vector<Bytes> chunks = {2_MiB, 4_MiB, 8_MiB, 16_MiB,
                                       32_MiB, 64_MiB, 128_MiB,
                                       256_MiB, 512_MiB, 1024_MiB};

    Table table({"Chunk Size", "512MB block", "1GB block",
                 "2GB block", "2GB vs native"});
    const Tick native2G = nativeLatency(2_GiB);

    {
        std::vector<std::string> row = {"Native (cudaMalloc)"};
        for (const Bytes block : blocks)
            row.push_back(formatTime(nativeLatency(block)));
        row.push_back("1.0x");
        table.addRow(row);
    }
    for (const Bytes chunk : chunks) {
        std::vector<std::string> row = {formatBytes(chunk)};
        Tick lat2G = 0;
        for (const Bytes block : blocks) {
            if (chunk > block) {
                row.push_back("-");
                continue;
            }
            const Tick lat = vmAllocLatency(block, chunk);
            if (block == 2_GiB)
                lat2G = lat;
            row.push_back(formatTime(lat));
        }
        row.push_back(formatDouble(
                          static_cast<double>(lat2G) /
                              static_cast<double>(native2G),
                          1) +
                      "x");
        table.addRow(row);
    }
    table.print(std::cout);
    return 0;
}
