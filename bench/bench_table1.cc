/**
 * @file
 * Table 1: execution-time breakdown of the VMM API for a 2 GB
 * allocation built from 2 MB / 128 MB / 1024 MB chunks, normalized to
 * cuMemAlloc. Regenerates the paper's table from the simulated
 * driver's cost model.
 */

#include <array>

#include "bench/common.hh"
#include "support/units.hh"
#include "vmm/cost_model.hh"

using namespace gmlake;
using namespace gmlake::literals;

int
main()
{
    bench::banner("Table 1 — VMM API execution-time breakdown",
                  "Paper: reserve 0.003/0.003/0.002, create "
                  "18.1/0.89/0.79, map 0.70/0.01/0.002, setAccess "
                  "96.8/8.2/0.7, total 115.4/9.1/1.5 (x cuMemAlloc)");

    const vmm::CostModel model;
    const Bytes block = 2_GiB;
    const double ref =
        static_cast<double>(model.nativeAlloc(block));
    const std::array<Bytes, 3> chunks = {2_MiB, 128_MiB, 1024_MiB};

    Table table({"Chunk Size", "cuMemReserve", "cuMemCreate",
                 "cuMemMap", "cuMemSetAccess", "Total"});
    for (const Bytes chunk : chunks) {
        const std::size_t n = block / chunk;
        const double reserve = model.memAddressReserve(block) / ref;
        const double create =
            static_cast<double>(n) * model.memCreate(chunk) / ref;
        const double map =
            static_cast<double>(n) * model.memMap(chunk) / ref;
        const double access = model.memSetAccess(n, chunk) / ref;
        table.addRow({formatBytes(chunk), formatDouble(reserve, 3),
                      formatDouble(create, 2), formatDouble(map, 3),
                      formatDouble(access, 2),
                      formatDouble(reserve + create + map + access,
                                   1)});
    }
    table.print(std::cout);
    std::cout << "(all values normalized to cuMemAlloc(2 GiB) = "
              << formatTime(model.nativeAlloc(block)) << ")\n";
    return 0;
}
