/**
 * @file
 * Table 1: execution-time breakdown of the VMM API for a 2 GB
 * allocation built from 2 MB / 128 MB / 1024 MB chunks, normalized to
 * cuMemAlloc. Regenerates the paper's table from the simulated
 * driver's cost model.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("table1", argc, argv);
}
