/**
 * @file
 * Full-scale streaming serving day: ~10⁷ paged KV-cache events pulled
 * from a generator EventSource through gmlake vs caching vs native,
 * with host-RSS growth recorded to prove the replay footprint is
 * independent of event count (wall_events_per_sec / peak_rss_bytes /
 * rss_growth_bytes in BENCH_serve-day.json).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("serve-day", argc, argv);
}
