/**
 * @file
 * Figure 12: utilization and reserved memory across training
 * platforms — FSDP (GLM-10B), DeepSpeed (OPT-13B), Colossal-AI
 * (GPT-2) — with LoRA+recomputation on four GPUs.
 * Paper: GMLake cuts fragmentation/reserved memory by ~9-33% /
 * 7-25 GB across all three platforms.
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 12 — platform scalability, caching vs GMLake",
           "Paper: reductions of 9-33% fragmentation and 7-25 GB "
           "reserved memory across FSDP / DeepSpeed / Colossal-AI");

    const struct
    {
        const char *label;
        const char *model;
        workload::Platform platform;
        int batch;
    } rows[] = {
        {"FSDP-GLM-10B", "GLM-10B", workload::Platform::fsdp, 24},
        {"DS-OPT-13B", "OPT-13B",
         workload::Platform::deepspeedZero3, 16},
        {"CAI-GPT-2", "GPT-2", workload::Platform::colossalAi, 48},
    };

    Table table({"Platform-Model", "RM w/o GML", "RM w/ GML",
                 "UR w/o GML", "UR w/ GML", "Saved"});
    for (const auto &r : rows) {
        workload::TrainConfig cfg;
        cfg.model = workload::findModel(r.model);
        cfg.platform = r.platform;
        cfg.strategies = workload::Strategies::parse("LR");
        cfg.gpus = 4;
        cfg.batchSize = r.batch;
        cfg.iterations = 12;
        const auto pair = runPair(cfg);
        const Bytes saved =
            pair.caching.peakReserved > pair.gmlake.peakReserved
                ? pair.caching.peakReserved - pair.gmlake.peakReserved
                : 0;
        table.addRow(
            {r.label,
             oomOr(pair.caching, gb(pair.caching.peakReserved) + " GB"),
             oomOr(pair.gmlake, gb(pair.gmlake.peakReserved) + " GB"),
             oomOr(pair.caching, formatPercent(pair.caching.utilization)),
             oomOr(pair.gmlake, formatPercent(pair.gmlake.utilization)),
             gb(saved) + " GB"});
    }
    table.print(std::cout);
    return 0;
}
