/**
 * @file
 * Figure 12: utilization and reserved memory across training
 * platforms — FSDP (GLM-10B), DeepSpeed (OPT-13B), Colossal-AI
 * (GPT-2) — with LoRA+recomputation on four GPUs.
 * Paper: GMLake cuts fragmentation/reserved memory by ~9-33% /
 * 7-25 GB across all three platforms.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig12", argc, argv);
}
