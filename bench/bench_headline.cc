/**
 * @file
 * Section 5 headline numbers: across the workload matrix (models x
 * strategies x batch sizes), GMLake reduces reserved GPU memory by
 * 9.2 GB on average (up to 25 GB) and fragmentation by 15 % on
 * average (up to 33 %).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("headline", argc, argv);
}
