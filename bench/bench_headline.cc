/**
 * @file
 * Section 5 headline numbers: across the workload matrix (models x
 * strategies x batch sizes), GMLake reduces reserved GPU memory by
 * 9.2 GB on average (up to 25 GB) and fragmentation by 15 % on
 * average (up to 33 %).
 */

#include <algorithm>

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Section 5 — headline aggregate over the workload matrix",
           "Paper: avg 9.2 GB (max 25 GB) reserved saved; avg 15% "
           "(max 33%) fragmentation removed, over 76 workloads");

    const struct
    {
        const char *model;
        std::vector<int> batches;
    } models[] = {
        {"OPT-1.3B", {64, 128, 192}}, {"GPT-2", {64, 128}},
        {"GLM-10B", {24, 48}},        {"OPT-13B", {16, 32, 48}},
        {"Vicuna-13B", {16, 32, 48}}, {"GPT-NeoX-20B", {24, 48, 72, 84}},
    };
    const char *strategies[] = {"R", "LR", "RO", "LRO"};

    double sumSavedGb = 0.0, maxSavedGb = 0.0;
    double sumFragDrop = 0.0, maxFragDrop = 0.0;
    int workloads = 0, oomAvoided = 0;

    for (const auto &m : models) {
        for (const int batch : m.batches) {
            for (const char *strat : strategies) {
                workload::TrainConfig cfg;
                cfg.model = workload::findModel(m.model);
                cfg.strategies = workload::Strategies::parse(strat);
                cfg.gpus = 4;
                cfg.batchSize = batch;
                cfg.iterations = 8;
                const auto pair = runPair(cfg);
                if (pair.gmlake.oom)
                    continue; // out of scope for both
                if (pair.caching.oom) {
                    ++oomAvoided;
                    continue;
                }
                ++workloads;
                const double saved =
                    (static_cast<double>(pair.caching.peakReserved) -
                     static_cast<double>(pair.gmlake.peakReserved)) /
                    (1024.0 * 1024.0 * 1024.0);
                const double fragDrop = pair.caching.fragmentation -
                                        pair.gmlake.fragmentation;
                sumSavedGb += saved;
                maxSavedGb = std::max(maxSavedGb, saved);
                sumFragDrop += fragDrop;
                maxFragDrop = std::max(maxFragDrop, fragDrop);
            }
        }
    }

    Table table({"Metric", "Measured", "Paper"});
    table.addRow({"Workloads evaluated", std::to_string(workloads),
                  "76"});
    table.addRow({"Avg reserved saved",
                  formatDouble(sumSavedGb / workloads, 1) + " GB",
                  "9.2 GB"});
    table.addRow({"Max reserved saved",
                  formatDouble(maxSavedGb, 1) + " GB", "25 GB"});
    table.addRow({"Avg fragmentation removed",
                  formatPercent(sumFragDrop / workloads), "15%"});
    table.addRow({"Max fragmentation removed",
                  formatPercent(maxFragDrop), "33%"});
    table.addRow({"Baseline-OOM workloads GMLake completed",
                  std::to_string(oomAvoided), "-"});
    table.print(std::cout);
    return 0;
}
