/**
 * @file
 * Fragmentation churn: a hole-riddled physical space plus deep
 * stitched pools make the VMM bookkeeping cost (first-fit hole scan,
 * mapping-table updates) visible as host wallclock (vmm_wall_ns in
 * BENCH_*.json), separate from the allocator's pool search.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("frag-churn", argc, argv);
}
