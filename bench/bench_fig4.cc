/**
 * @file
 * Figure 4: baseline memory utilization as the GPU count scales from
 * 1 to 16 (OPT-13B). Paper series: 91%, 84%, 78%, 80%, 76% — more
 * GPUs, more fragmentation (Observation 2).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig4", argc, argv);
}
