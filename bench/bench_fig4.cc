/**
 * @file
 * Figure 4: baseline memory utilization as the GPU count scales from
 * 1 to 16 (OPT-13B). Paper series: 91%, 84%, 78%, 80%, 76% — more
 * GPUs, more fragmentation (Observation 2).
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 4 — utilization vs GPU count (baseline allocator)",
           "Paper: 91% at 1 GPU degrading to 76% at 16 GPUs "
           "(OPT-13B, ZeRO-3 sharding)");

    const int gpuCounts[] = {1, 2, 4, 8, 16};
    const double paper[] = {0.91, 0.84, 0.78, 0.80, 0.76};

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.batchSize = 16;
    cfg.iterations = 12;

    Table table({"GPUs", "Utilization (measured)",
                 "Utilization (paper)", "Peak reserved"});
    for (std::size_t i = 0; i < 5; ++i) {
        cfg.gpus = gpuCounts[i];
        const auto run =
            sim::runScenario(cfg, sim::AllocatorKind::caching);
        table.addRow({std::to_string(cfg.gpus),
                      formatPercent(run.utilization),
                      formatPercent(paper[i]),
                      gb(run.peakReserved) + " GB"});
    }
    table.print(std::cout);
    return 0;
}
