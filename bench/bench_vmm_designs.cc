/**
 * @file
 * Extension experiment: the three VMM-based allocator designs side by
 * side — GMLake's stitching (this paper), PyTorch's expandable
 * segments (the design the paper influenced), and the classic
 * caching allocator as the reference — across training and serving
 * workloads.
 *
 * Expected shape: expandable segments removes most of the
 * fragmentation (one contiguous heap per stream, tail growth), but
 * cannot recombine interior holes under a fixed virtual layout;
 * stitching closes the remaining gap by mapping the same physical
 * chunks under fresh contiguous addresses.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("vmm-designs", argc, argv);
}
