/**
 * @file
 * Extension experiment: the three VMM-based allocator designs side by
 * side — GMLake's stitching (this paper), PyTorch's expandable
 * segments (the design the paper influenced), and the classic
 * caching allocator as the reference — across training and serving
 * workloads.
 *
 * Expected shape: expandable segments removes most of the
 * fragmentation (one contiguous heap per stream, tail growth), but
 * cannot recombine interior holes under a fixed virtual layout;
 * stitching closes the remaining gap by mapping the same physical
 * chunks under fresh contiguous addresses.
 */

#include "alloc/expandable_allocator.hh"

#include "bench/common.hh"
#include "workload/servegen.hh"

using namespace gmlake;
using namespace gmlake::bench;

namespace
{

void
trainingRows(Table &table, const char *model, const char *strat,
             int batch)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel(model);
    cfg.strategies = workload::Strategies::parse(strat);
    cfg.gpus = 4;
    cfg.batchSize = batch;
    cfg.iterations = 10;

    for (const auto kind : {sim::AllocatorKind::caching,
                            sim::AllocatorKind::expandable,
                            sim::AllocatorKind::gmlake}) {
        const auto r = sim::runScenario(cfg, kind);
        table.addRow({std::string(model) + " " + strat,
                      allocatorKindName(kind),
                      oomOr(r, formatPercent(r.utilization)),
                      oomOr(r, gb(r.peakReserved) + " GB"),
                      formatDouble(r.samplesPerSec, 2)});
    }
}

} // namespace

int
main()
{
    banner("Extension — VMM allocator designs: stitching vs "
           "expandable segments",
           "GMLake (ASPLOS'24) vs the PyTorch expandable_segments "
           "design it influenced, vs the classic caching allocator");

    {
        std::cout << "\nTraining workloads (4 GPUs):\n";
        Table table({"Workload", "Allocator", "Utilization",
                     "Peak reserved", "Thr (s/s)"});
        trainingRows(table, "OPT-13B", "LR", 16);
        trainingRows(table, "GPT-NeoX-20B", "LR", 48);
        trainingRows(table, "GPT-NeoX-20B", "LRO", 24);
        table.print(std::cout);
    }

    {
        std::cout << "\nServing workload (OPT-13B, continuous "
                     "batching, 32 concurrent):\n";
        workload::ServeConfig cfg;
        cfg.model = workload::findModel("OPT-13B");
        cfg.requests = 192;
        cfg.maxBatch = 32;
        const auto gen = workload::generateServingTrace(cfg);

        Table table({"Allocator", "Utilization", "Peak reserved",
                     "Tokens/s"});
        for (const auto kind : {sim::AllocatorKind::caching,
                                sim::AllocatorKind::expandable,
                                sim::AllocatorKind::gmlake}) {
            vmm::Device device;
            const auto allocator = sim::makeAllocator(kind, device);
            const auto r =
                sim::runTrace(*allocator, device, gen.trace);
            table.addRow(
                {allocatorKindName(kind),
                 oomOr(r, formatPercent(r.utilization)),
                 oomOr(r, gb(r.peakReserved) + " GB"),
                 formatDouble(static_cast<double>(gen.generatedTokens) /
                                  (static_cast<double>(r.simTime) *
                                   1e-9),
                              0)});
        }
        table.print(std::cout);
    }
    return 0;
}
