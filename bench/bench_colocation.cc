/**
 * @file
 * Multi-tenant colocation: an OPT-13B fine-tune and an OPT-13B
 * KV-cache serving process share one simulated GPU through the
 * multi-session engine; fragmentation from either tenant eats the
 * other's headroom, and stitching returns it.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("colocate-train-serve", argc,
                                    argv);
}
