/**
 * @file
 * Figure 14: memory-footprint trace of GPT-NeoX-20B fine-tuning at
 * batch size 72 (LoRA + recompute, 4 GPUs). The paper shows PyTorch
 * hitting OOM around 200 s while GMLake's reserved memory stays close
 * to its active memory, converging after ~4 iterations.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig14", argc, argv);
}
