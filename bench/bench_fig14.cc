/**
 * @file
 * Figure 14: memory-footprint trace of GPT-NeoX-20B fine-tuning at
 * batch size 72 (LoRA + recompute, 4 GPUs). The paper shows PyTorch
 * hitting OOM around 200 s while GMLake's reserved memory stays close
 * to its active memory, converging after ~4 iterations.
 */

#include <algorithm>

#include "bench/common.hh"
#include "support/csv.hh"

using namespace gmlake;
using namespace gmlake::bench;

namespace
{

void
printSeries(const sim::RunResult &r, int columns)
{
    Table table({"Time", "Active", "Reserved"});
    const std::size_t n = r.series.size();
    const std::size_t stride =
        std::max<std::size_t>(1, n / static_cast<std::size_t>(columns));
    for (std::size_t i = 0; i < n; i += stride) {
        const auto &p = r.series[i];
        table.addRow({formatTime(p.time), gb(p.active) + " GB",
                      gb(p.reserved) + " GB"});
    }
    if (r.oom) {
        table.addRow({formatTime(r.oomAt), "OOM", "OOM"});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    banner("Figure 14 — memory trace, GPT-NeoX-20B at the OOM "
           "boundary (LR, 4 GPUs)",
           "Paper: PyTorch OOMs ~200 s in; GMLake's reserved tracks "
           "its active memory and converges after ~4 iterations");

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    // The paper runs batch 72; our synthetic activations are a bit
    // leaner, so the baseline's OOM boundary sits at batch ~96
    // (see EXPERIMENTS.md). Use the boundary batch so the figure
    // shows the same phenomenon: the baseline dies mid-run, GMLake
    // completes the job with reserved ~= active.
    cfg.batchSize = 96;
    cfg.iterations = 10;

    const auto pair = runPair(cfg);

    std::cout << "\nPyTorch caching allocator:"
              << (pair.caching.oom ? "  (run ends in OOM)" : "")
              << "\n";
    printSeries(pair.caching, 16);
    std::cout << "\nGMLake:"
              << (pair.gmlake.oom ? "  (run ends in OOM)" : "") << "\n";
    printSeries(pair.gmlake, 16);

    // Full series for plotting.
    for (const auto *r : {&pair.caching, &pair.gmlake}) {
        CsvWriter csv("fig14_" + r->allocator + ".csv",
                      {"time_ns", "active_bytes", "reserved_bytes"});
        for (const auto &p : r->series) {
            csv.addRow({std::to_string(p.time),
                        std::to_string(p.active),
                        std::to_string(p.reserved)});
        }
    }
    std::cout << "\n(full series written to fig14_caching.csv / "
                 "fig14_gmlake.csv)\n";
    return 0;
}
