/**
 * @file
 * Extension experiment: KV-cache serving (Section 6 discussion).
 *
 * Continuous-batching decode without paged attention churns
 * variable-length KV buffers; the splitting-based caching allocator
 * fragments (the problem vLLM solves with paging), while virtual
 * memory stitching absorbs the churn without any model-side change.
 * Sweeps the concurrent batch size and reports utilization, reserved
 * memory and decode throughput per allocator.
 */

#include "bench/common.hh"
#include "workload/servegen.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Extension — KV-cache serving (continuous batching, "
           "OPT-13B)",
           "Variable-length KV buffers fragment the caching "
           "allocator; stitching absorbs them (cf. vLLM, Section 6)");

    workload::ServeConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.requests = 192;

    std::cout << "KV cache: "
              << formatBytes(workload::kvBytesPerToken(cfg.model))
              << " per token, quantum " << cfg.kvQuantumTokens
              << " tokens\n\n";

    Table table({"Batch", "Allocator", "Utilization", "Peak reserved",
                 "Tokens/s", "KV reallocs"});
    for (const int batch : {8, 16, 32, 64}) {
        cfg.maxBatch = batch;
        const auto gen = workload::generateServingTrace(cfg);

        for (const auto kind : {sim::AllocatorKind::caching,
                                sim::AllocatorKind::gmlake}) {
            vmm::Device device;
            const auto allocator = sim::makeAllocator(kind, device);
            const auto r =
                sim::runTrace(*allocator, device, gen.trace);
            const double tokensPerSec =
                static_cast<double>(gen.generatedTokens) /
                (static_cast<double>(r.simTime) * 1e-9);
            table.addRow({std::to_string(batch),
                          allocatorKindName(kind),
                          oomOr(r, formatPercent(r.utilization)),
                          oomOr(r, gb(r.peakReserved) + " GB"),
                          oomOr(r, formatDouble(tokensPerSec, 0)),
                          std::to_string(gen.kvReallocs)});
        }
    }
    table.print(std::cout);
    return 0;
}
