/**
 * @file
 * Extension experiment: KV-cache serving (Section 6 discussion).
 *
 * Continuous-batching decode without paged attention churns
 * variable-length KV buffers; the splitting-based caching allocator
 * fragments (the problem vLLM solves with paging), while virtual
 * memory stitching absorbs the churn without any model-side change.
 * Sweeps the concurrent batch size and reports utilization, reserved
 * memory and decode throughput per allocator.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("serving", argc, argv);
}
