/**
 * @file
 * Figure 11: GPU scale-out 1 -> 16 with LR strategies: reserved
 * memory, utilization and throughput, with and without GMLake.
 * Paper: baseline utilization decays with scale (up to 23% / 17 GB
 * recovered by GMLake on GPT-NeoX-20B); GMLake stays ~90%+ and
 * matches baseline throughput.
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 11 — GPU scale-out, caching vs GMLake (LR)",
           "Paper: fragmentation grows with GPU count; GMLake keeps "
           "~90% utilization and baseline-level throughput");

    const struct
    {
        const char *model;
        int batch;
    } models[] = {
        {"OPT-13B", 16}, {"Vicuna-13B", 16}, {"GPT-NeoX-20B", 12},
    };

    for (const auto &m : models) {
        std::cout << "\n--- " << m.model << " (LR, batch " << m.batch
                  << " per GPU) ---\n";
        Table table({"GPUs", "RM w/o GML", "RM w/ GML", "UR w/o GML",
                     "UR w/ GML", "Thr w/o (s/s)", "Thr w/ (s/s)"});
        for (const int gpus : {1, 2, 4, 8, 16}) {
            workload::TrainConfig cfg;
            cfg.model = workload::findModel(m.model);
            cfg.strategies = workload::Strategies::parse("LR");
            cfg.gpus = gpus;
            cfg.batchSize = m.batch;
            cfg.iterations = 10;
            const auto pair = runPair(cfg);
            table.addRow(
                {std::to_string(gpus),
                 oomOr(pair.caching, gb(pair.caching.peakReserved) + " GB"),
                 oomOr(pair.gmlake, gb(pair.gmlake.peakReserved) + " GB"),
                 oomOr(pair.caching, formatPercent(pair.caching.utilization)),
                 oomOr(pair.gmlake, formatPercent(pair.gmlake.utilization)),
                 formatDouble(pair.caching.samplesPerSec, 1),
                 formatDouble(pair.gmlake.samplesPerSec, 1)});
        }
        table.print(std::cout);
    }
    return 0;
}
