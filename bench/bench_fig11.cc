/**
 * @file
 * Figure 11: GPU scale-out 1 -> 16 with LR strategies: reserved
 * memory, utilization and throughput, with and without GMLake.
 * Paper: baseline utilization decays with scale (up to 23% / 17 GB
 * recovered by GMLake on GPT-NeoX-20B); GMLake stays ~90%+ and
 * matches baseline throughput.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig11", argc, argv);
}
