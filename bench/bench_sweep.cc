/**
 * @file
 * Warm-started policy sweep at smoke scale: the warmup prefix of two
 * co-located training tenants is replayed once and checkpointed
 * (Allocator::saveState()), then every point of a small GMLake-knob
 * grid restores the checkpoint and replays only the divergent tail
 * in parallel (sim/sweep.hh). Decision-digest pinned; per-point
 * metrics and the Pareto frontier land in BENCH_sweep-smoke.json.
 * For free-form grids and random search use `gmlake_sim sweep`.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("sweep-smoke", argc, argv);
}
