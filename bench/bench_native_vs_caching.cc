/**
 * @file
 * Section 2.2: training with the native allocator (no caching) is
 * ~9.7x slower end to end than with the caching allocator, because
 * every cudaMalloc/cudaFree synchronizes the device.
 */

#include "bench/common.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Section 2.2 — native vs caching allocator, end to end",
           "Paper: disabling the caching allocator slows OPT-1.3B "
           "training by ~9.7x");

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-1.3B");
    cfg.strategies = workload::Strategies::parse("R");
    cfg.gpus = 4;
    cfg.batchSize = 8;
    cfg.iterations = 6;

    const auto native =
        sim::runScenario(cfg, sim::AllocatorKind::native);
    const auto caching =
        sim::runScenario(cfg, sim::AllocatorKind::caching);

    Table table({"Allocator", "Iteration time", "Device API time",
                 "Throughput (samples/s)", "Slowdown"});
    auto row = [&](const sim::RunResult &r) {
        table.addRow(
            {r.allocator,
             formatTime(r.simTime / std::max(1, r.iterationsDone)),
             formatTime(r.deviceApiTime),
             formatDouble(r.samplesPerSec, 1),
             formatDouble(static_cast<double>(r.simTime) /
                              static_cast<double>(caching.simTime),
                          1) +
                 "x"});
    };
    row(caching);
    row(native);
    table.print(std::cout);
    std::cout << "(paper reports 9.7x end to end; the end-to-end gap "
                 "scales with the workload's\n allocation density — "
                 "allocator-time slowdown here: "
              << formatDouble(
                     static_cast<double>(native.deviceApiTime) /
                         static_cast<double>(
                             std::max<Tick>(1, caching.deviceApiTime)),
                     0)
              << "x)\n";
    return 0;
}
