/**
 * @file
 * Section 2.2: training with the native allocator (no caching) is
 * ~9.7x slower end to end than with the caching allocator, because
 * every cudaMalloc/cudaFree synchronizes the device.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("native-vs-caching", argc, argv);
}
