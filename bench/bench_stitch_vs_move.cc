/**
 * @file
 * Stitching vs moving (paper Section 6): compare GMLake's virtual
 * memory stitching against a compaction-based defragmenter that
 * relocates live blocks with device-to-device copies. Both reach
 * high utilization; the difference is where the time goes — and that
 * a moving collector could not be deployed transparently under a DL
 * framework at all (live tensors hold raw device pointers).
 */

#include "alloc/compacting_allocator.hh"
#include "core/gmlake_allocator.hh"

#include "bench/common.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Related work — stitching vs compaction-based moving",
           "Paper Section 6: stitching avoids the data movement of "
           "consolidation-based defragmentation");

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-13B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 16;
    cfg.iterations = 12;

    Table table({"Allocator", "Utilization", "Peak reserved",
                 "Thr (s/s)", "Defrag work"});

    const auto caching =
        sim::runScenario(cfg, sim::AllocatorKind::caching);
    table.addRow({"caching (no defrag)",
                  formatPercent(caching.utilization),
                  gb(caching.peakReserved) + " GB",
                  formatDouble(caching.samplesPerSec, 2), "-"});

    {
        vmm::Device device;
        alloc::CompactingAllocator compacting(device);
        const auto trace = workload::generateTrainingTrace(cfg);
        const auto r =
            sim::runTrace(compacting, device, trace, &cfg);
        table.addRow(
            {"compacting (moves data)", formatPercent(r.utilization),
             gb(r.peakReserved) + " GB",
             formatDouble(r.samplesPerSec, 2),
             std::to_string(compacting.compactions()) + " cycles, " +
                 formatBytes(compacting.bytesMoved()) + " copied"});
    }

    {
        vmm::Device device;
        core::GMLakeAllocator lake(device);
        const auto trace = workload::generateTrainingTrace(cfg);
        const auto r = sim::runTrace(lake, device, trace, &cfg);
        table.addRow(
            {"gmlake (stitches)", formatPercent(r.utilization),
             gb(r.peakReserved) + " GB",
             formatDouble(r.samplesPerSec, 2),
             std::to_string(lake.strategy().stitches) +
                 " stitches, 0 B copied"});
    }
    table.print(std::cout);
    std::cout << "(a moving collector also cannot be dropped under a "
                 "DL framework transparently:\n live tensors hold raw "
                 "device pointers that relocation would invalidate)\n";
    return 0;
}
