/**
 * @file
 * Stitching vs moving (paper Section 6): compare GMLake's virtual
 * memory stitching against a compaction-based defragmenter that
 * relocates live blocks with device-to-device copies. Both reach
 * high utilization; the difference is where the time goes — and that
 * a moving collector could not be deployed transparently under a DL
 * framework at all (live tensors hold raw device pointers).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("stitch-vs-move", argc, argv);
}
