/**
 * @file
 * Figure 3: baseline (PyTorch caching allocator) memory utilization
 * under five strategy combinations on OPT-1.3B, four GPUs.
 * Paper series: P 97%, PR 80%, PLR 76%, PRO 73%, PLRO 65%.
 */

#include "bench/common.hh"

using namespace gmlake;
using namespace gmlake::bench;

int
main()
{
    banner("Figure 3 — utilization vs strategy combination "
           "(baseline allocator)",
           "Paper: P 97%, PR 80%, PLR 76%, PRO 73%, PLRO 65% — "
           "complex strategies fragment the caching allocator");

    const struct
    {
        const char *paperLabel;
        const char *strategies;
        double paperUtil;
    } rows[] = {
        {"P", "N", 0.97},    {"PR", "R", 0.80},
        {"PLR", "LR", 0.76}, {"PRO", "RO", 0.73},
        {"PLRO", "LRO", 0.65},
    };

    workload::TrainConfig cfg;
    cfg.model = workload::findModel("OPT-1.3B");
    cfg.gpus = 4;
    cfg.batchSize = 64;
    cfg.iterations = 15;

    Table table({"Combination", "Utilization (measured)",
                 "Utilization (paper)", "Peak reserved",
                 "Peak active"});
    for (const auto &r : rows) {
        cfg.strategies = workload::Strategies::parse(r.strategies);
        // Average over several seeds: single-run utilization varies
        // by a few points with the random workload details.
        double util = 0.0;
        Bytes reserved = 0, active = 0;
        constexpr int kSeeds = 5;
        for (int s = 0; s < kSeeds; ++s) {
            cfg.seed = 42 + static_cast<std::uint64_t>(s);
            const auto run =
                sim::runScenario(cfg, sim::AllocatorKind::caching);
            util += run.utilization / kSeeds;
            reserved += run.peakReserved / kSeeds;
            active += run.peakActive / kSeeds;
        }
        table.addRow({r.paperLabel, formatPercent(util),
                      formatPercent(r.paperUtil),
                      gb(reserved) + " GB", gb(active) + " GB"});
    }
    table.print(std::cout);
    return 0;
}
