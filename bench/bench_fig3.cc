/**
 * @file
 * Figure 3: baseline (PyTorch caching allocator) memory utilization
 * under five strategy combinations on OPT-1.3B, four GPUs.
 * Paper series: P 97%, PR 80%, PLR 76%, PRO 73%, PLRO 65%.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("fig3", argc, argv);
}
