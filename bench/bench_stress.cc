/**
 * @file
 * Allocator hot-path stress: deep inactive pools, 100k+ events and
 * multi-stream churn make the per-request BestFit cost visible as
 * host wallclock (alloc_wall_ns / p50 / p99 in BENCH_*.json).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return gmlake::bench::benchMain("stress-allocator", argc, argv);
}
