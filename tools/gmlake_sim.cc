/**
 * @file
 * gmlake_sim — command-line experiment runner.
 *
 * Registry mode drives the shared experiment registry — the same
 * scenarios the bench_* binaries and CI run:
 *   gmlake_sim list
 *   gmlake_sim run headline --csv
 *   gmlake_sim run fig10 --json --iterations 4
 *   gmlake_sim run all --iterations 1
 *
 * Trace mode generates, converts, inspects, and replays single
 * workloads under any of the allocators on a simulated GPU. All five
 * verbs share one option table:
 *   gmlake_sim trace run --model OPT-13B --strategies LR --gpus 4
 *   gmlake_sim trace record trace.txt --model GPT-2
 *   gmlake_sim trace record trace.gmt --model GPT-2
 *   gmlake_sim trace pack trace.txt trace.gmt
 *   gmlake_sim trace info trace.gmt
 *   gmlake_sim trace replay trace.gmt --allocator gmlake --snapshot
 *
 * Replay sniffs the file format: `.gmt` binary traces stream through
 * BinaryTraceSource (multi-section files replay as co-located
 * sessions); anything else is parsed as a text trace.
 *
 * The historical bare-flag interface (`gmlake_sim --model ...
 * [--record F | --replay F]`) still parses but emits a deprecation
 * warning and routes through the matching trace verb.
 *
 * Run with --help for the full flag list.
 */

#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "alloc/snapshot.hh"
#include "sim/chaos.hh"
#include "sim/experiment.hh"
#include "sim/probe.hh"
#include "sim/runner.hh"
#include "sim/session.hh"
#include "sim/sweep.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/units.hh"
#include "workload/binary_trace.hh"
#include "workload/event_source.hh"
#include "workload/servegen.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

struct Options
{
    // Workload
    std::string model = "OPT-13B";
    std::string strategies = "LR";
    std::string platform = "deepspeed";
    int gpus = 4;
    int batch = 16;
    int iterations = 12;
    int seqLen = 512;
    std::uint64_t seed = 42;
    bool serve = false;
    int serveRequests = 256;
    int serveMaxBatch = 32;

    // Device / allocator
    std::string allocator = "all";
    Bytes capacityGiB = 80;
    Bytes fragLimitMiB = 2;

    // Output
    std::string csvPath;
    bool snapshot = false;

    // Legacy spellings of the record/replay verbs.
    std::string recordPath;
    std::string replayPath;

    bool listModels = false;
    bool help = false;
};

// ------------------------------------------------ shared option table

/** Which trace verbs a flag applies to. */
enum FlagGroup : unsigned
{
    kWorkloadFlags = 1u << 0, //!< trace run | record (+ legacy)
    kDeviceFlags = 1u << 1,   //!< trace run | replay (+ legacy)
    kOutputFlags = 1u << 2,   //!< trace run | replay (+ legacy)
    kLegacyFlags = 1u << 3,   //!< bare-flag mode only
};

unsigned long long
parseNumber(const char *flag, const std::string &value)
{
    unsigned long long parsed = 0;
    std::size_t consumed = 0;
    if (!value.empty() && value[0] >= '0' && value[0] <= '9') {
        try {
            parsed = std::stoull(value, &consumed);
        } catch (const std::exception &) {
            consumed = 0;
        }
    }
    if (consumed == 0 || consumed != value.size())
        GMLAKE_FATAL("flag ", flag, " needs a non-negative number, "
                     "got '", value, "'");
    return parsed;
}

struct FlagSpec
{
    const char *name;
    const char *argName; //!< nullptr for boolean toggles
    unsigned groups;
    const char *help;
    void (*apply)(Options &, const std::string &);
};

/**
 * The one option table every trace verb (and the legacy bare-flag
 * mode) parses with; each verb admits the groups that make sense for
 * it and rejects the rest with a pointed error.
 */
const FlagSpec kFlags[] = {
    // Workload selection
    {"--model", "NAME", kWorkloadFlags,
     "model from the zoo (default OPT-13B)",
     [](Options &o, const std::string &v) { o.model = v; }},
    {"--list-models", nullptr, kWorkloadFlags,
     "print the model zoo and exit",
     [](Options &o, const std::string &) { o.listModels = true; }},
    {"--strategies", "S", kWorkloadFlags,
     "N | R | LR | RO | LRO (default LR)",
     [](Options &o, const std::string &v) { o.strategies = v; }},
    {"--platform", "P", kWorkloadFlags,
     "deepspeed | fsdp | colossalai | ddp",
     [](Options &o, const std::string &v) { o.platform = v; }},
    {"--gpus", "N", kWorkloadFlags,
     "data-parallel degree (default 4)",
     [](Options &o, const std::string &v) {
         o.gpus = static_cast<int>(parseNumber("--gpus", v));
     }},
    {"--batch", "N", kWorkloadFlags,
     "per-GPU batch size (default 16)",
     [](Options &o, const std::string &v) {
         o.batch = static_cast<int>(parseNumber("--batch", v));
     }},
    {"--iterations", "N", kWorkloadFlags,
     "training iterations (default 12)",
     [](Options &o, const std::string &v) {
         o.iterations =
             static_cast<int>(parseNumber("--iterations", v));
     }},
    {"--seq", "N", kWorkloadFlags,
     "max sequence length (default 512)",
     [](Options &o, const std::string &v) {
         o.seqLen = static_cast<int>(parseNumber("--seq", v));
     }},
    {"--seed", "N", kWorkloadFlags, "workload RNG seed (default 42)",
     [](Options &o, const std::string &v) {
         o.seed = parseNumber("--seed", v);
     }},
    {"--serve", nullptr, kWorkloadFlags,
     "serving workload instead of training",
     [](Options &o, const std::string &) { o.serve = true; }},
    {"--requests", "N", kWorkloadFlags,
     "serving: total requests (default 256)",
     [](Options &o, const std::string &v) {
         o.serveRequests =
             static_cast<int>(parseNumber("--requests", v));
     }},
    {"--max-batch", "N", kWorkloadFlags,
     "serving: concurrent requests (32)",
     [](Options &o, const std::string &v) {
         o.serveMaxBatch =
             static_cast<int>(parseNumber("--max-batch", v));
     }},

    // Device and allocator
    {"--allocator", "A", kDeviceFlags,
     "caching | gmlake | native | compacting | expandable | all",
     [](Options &o, const std::string &v) { o.allocator = v; }},
    {"--capacity", "GiB", kDeviceFlags, "device memory (default 80)",
     [](Options &o, const std::string &v) {
         o.capacityGiB = parseNumber("--capacity", v);
     }},
    {"--frag-limit", "MiB", kDeviceFlags,
     "GMLake fragmentation limit (default 2)",
     [](Options &o, const std::string &v) {
         o.fragLimitMiB = parseNumber("--frag-limit", v);
     }},

    // Output
    {"--csv", "FILE", kOutputFlags,
     "append result rows to a CSV file",
     [](Options &o, const std::string &v) { o.csvPath = v; }},
    {"--snapshot", nullptr, kOutputFlags,
     "print the allocator memory snapshot",
     [](Options &o, const std::string &) { o.snapshot = true; }},

    // Deprecated spellings of the record/replay verbs.
    {"--record", "FILE", kLegacyFlags,
     "(deprecated) = trace record FILE",
     [](Options &o, const std::string &v) { o.recordPath = v; }},
    {"--replay", "FILE", kLegacyFlags,
     "(deprecated) = trace replay FILE",
     [](Options &o, const std::string &v) { o.replayPath = v; }},
};

const FlagSpec *
findFlag(const std::string &name)
{
    for (const FlagSpec &spec : kFlags) {
        if (name == spec.name)
            return &spec;
    }
    return nullptr;
}

/**
 * Parse argv[begin..] against the shared table, admitting only flags
 * in @p groups. Non-flag arguments land in @p positionals (rejected
 * when nullptr).
 */
Options
parseFlags(int argc, char **argv, int begin, unsigned groups,
           std::vector<std::string> *positionals)
{
    Options opt;
    for (int i = begin; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            opt.help = true;
            continue;
        }
        if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
            const FlagSpec *spec = findFlag(arg);
            if (spec == nullptr)
            GMLAKE_FATAL("unknown flag: ", arg, " (try --help)");
            if ((spec->groups & groups) == 0)
                GMLAKE_FATAL("flag ", arg, " does not apply to this "
                             "subcommand (try --help)");
            std::string value;
            if (spec->argName != nullptr) {
                if (i + 1 >= argc)
                    GMLAKE_FATAL("flag ", arg, " needs a value");
                value = argv[++i];
            }
            spec->apply(opt, value);
        } else if (positionals != nullptr) {
            positionals->push_back(arg);
        } else {
            GMLAKE_FATAL("unexpected argument: ", arg,
                         " (try --help)");
        }
    }
    return opt;
}

void
printFlagGroup(unsigned group)
{
    for (const FlagSpec &spec : kFlags) {
        if ((spec.groups & group) == 0)
            continue;
        std::string head = spec.name;
        if (spec.argName != nullptr)
            head += std::string(" ") + spec.argName;
        std::cout << "  " << head
                  << std::string(
                         head.size() < 19 ? 19 - head.size() : 1, ' ')
                  << spec.help << "\n";
    }
}

void
printHelp()
{
    std::cout <<
        "gmlake_sim — GMLake reproduction experiment runner\n\n"
        "Registered experiments (figures/tables via the shared "
        "registry):\n"
        "  list                print every registered scenario\n"
        "  run NAME [opts]     run one scenario ('all' runs every "
        "one)\n"
        "      --iterations N  override training iterations\n"
        "      --capacity GiB  override device capacity\n"
        "      --seed N        override the workload seed\n"
        "      --threads N     worker threads for cluster scenarios\n"
        "                      (0 = all cores; results identical)\n"
        "      --engine-threads N\n"
        "                      worker threads inside each engine run\n"
        "                      (0 = all cores; deterministic mode\n"
        "                      keeps results identical)\n"
        "      --engine-commit MODE\n"
        "                      deterministic (default) or relaxed\n"
        "                      commit order for parallel runs\n"
        "      --csv [FILE]    append run records as CSV\n"
        "      --json [FILE]   write report (BENCH_<name>.json)\n"
        "      --out FILE      write the JSON report to FILE instead\n"
        "                      of the fixed BENCH_<name>.json\n"
        "      --timeline FILE record the run and write a\n"
        "                      Chrome-trace/Perfetto timeline (open\n"
        "                      in ui.perfetto.dev); results are\n"
        "                      bit-identical with or without it\n"
        "      --timeline-bin FILE\n"
        "                      also write the columnar binary event\n"
        "                      dump (.gmo)\n\n"
        "Policy sweeps (checkpoint/restore warm-starts):\n"
        "  sweep SCENARIO [opts]\n"
        "                      replay the warmup prefix once, fork\n"
        "                      each policy point from the checkpoint\n"
        "                      (smoke | train | colocate; see\n"
        "                      gmlake_sim sweep --help)\n\n"
        "Chaos / fault-injection soaks:\n"
        "  chaos SCENARIO [opts]\n"
        "                      replay under a deterministic fault\n"
        "                      plan + randomized tenant kills, audit\n"
        "                      invariants after every trial (see\n"
        "                      gmlake_sim chaos --help; distinct\n"
        "                      exit codes, see docs/BUILDING.md)\n\n"
        "Allocation provenance (observability ledger):\n"
        "  probe SCENARIO [opts]\n"
        "                      replay with the recorder active and\n"
        "                      answer provenance queries: --tensor T\n"
        "                      (who backed tensor T and at what\n"
        "                      device cost) or --at TICK (what was\n"
        "                      live and why); see gmlake_sim probe\n"
        "                      --help\n\n"
        "Global flags (every verb):\n"
        "  --log-level L       error | warn | info | debug (default\n"
        "                      warn); unknown levels are fatal\n\n"
        "Single workloads (trace subcommands):\n"
        "  trace run [opts]          generate a workload and replay "
        "it\n"
        "  trace record OUT [opts]   generate and save a workload\n"
        "                            (.gmt packs binary columnar,\n"
        "                            anything else writes text)\n"
        "  trace replay FILE [opts]  replay a saved trace (.gmt "
        "streams,\n"
        "                            multi-section files co-locate)\n"
        "  trace pack IN... OUT.gmt  convert text traces to one "
        "binary\n"
        "                            file, one section per input\n"
        "  trace info FILE.gmt       print sections and stats\n\n"
        "Workload selection (trace run | record):\n";
    printFlagGroup(kWorkloadFlags);
    std::cout << "\nDevice and allocator (trace run | replay):\n";
    printFlagGroup(kDeviceFlags);
    std::cout << "\nOutput (trace run | replay):\n";
    printFlagGroup(kOutputFlags);
    std::cout <<
        "\nDeprecated bare-flag aliases (warn and route to trace "
        "verbs):\n";
    printFlagGroup(kLegacyFlags);
}

// ----------------------------------------------------------- helpers

workload::Platform
parsePlatform(const std::string &name)
{
    if (name == "deepspeed")
        return workload::Platform::deepspeedZero3;
    if (name == "fsdp")
        return workload::Platform::fsdp;
    if (name == "colossalai")
        return workload::Platform::colossalAi;
    if (name == "ddp")
        return workload::Platform::ddp;
    GMLAKE_FATAL("unknown platform: ", name);
}

std::vector<sim::AllocatorKind>
parseAllocators(const std::string &name)
{
    if (name == "all") {
        // Every kind except native, which is ~10x slower end to end
        // and would dominate the run for no comparative value (ask
        // for it by name).
        std::vector<sim::AllocatorKind> kinds;
        for (const auto kind : sim::allAllocatorKinds()) {
            if (kind != sim::AllocatorKind::native)
                kinds.push_back(kind);
        }
        return kinds;
    }
    // Single allocator names share the registry/test mapping.
    if (const auto kind = sim::parseAllocatorKind(name))
        return {*kind};
    GMLAKE_FATAL("unknown allocator: ", name);
}

int
doListModels()
{
    for (const auto &m : workload::allModels())
        std::cout << m.name << "\n";
    return 0;
}

bool
endsWithGmt(const std::string &path)
{
    return path.size() >= 4 &&
           path.compare(path.size() - 4, 4, ".gmt") == 0;
}

/** "dir/opt-13b.trace" -> "opt-13b" (section naming for pack). */
std::string
sectionNameFor(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string base = slash == std::string::npos
                           ? path
                           : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base.resize(dot);
    return base.empty() ? "trace" : base;
}

workload::TrainConfig
makeTrainConfig(const Options &opt)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel(opt.model);
    cfg.strategies = workload::Strategies::parse(opt.strategies);
    cfg.platform = parsePlatform(opt.platform);
    cfg.gpus = opt.gpus;
    cfg.batchSize = opt.batch;
    cfg.iterations = opt.iterations;
    cfg.seqLen = opt.seqLen;
    cfg.seed = opt.seed;
    return cfg;
}

struct BuiltWorkload
{
    workload::Trace trace;
    std::uint64_t servedTokens = 0;
    bool training = false;
};

BuiltWorkload
buildWorkload(const Options &opt, const workload::TrainConfig &cfg)
{
    BuiltWorkload built;
    if (opt.serve) {
        workload::ServeConfig serveCfg;
        serveCfg.model = cfg.model;
        serveCfg.requests = opt.serveRequests;
        serveCfg.maxBatch = opt.serveMaxBatch;
        serveCfg.seed = opt.seed;
        auto gen = workload::generateServingTrace(serveCfg);
        built.trace = std::move(gen.trace);
        built.servedTokens = gen.generatedTokens;
        std::cout << "serving workload: " << gen.servedRequests
                  << " requests, " << gen.generatedTokens
                  << " tokens\n";
    } else {
        built.trace = workload::generateTrainingTrace(cfg);
        built.training = true;
        std::cout << "workload: " << cfg.describe() << " ("
                  << built.trace.size() << " events)\n";
    }
    return built;
}

void
saveTraceTo(const workload::Trace &trace, const std::string &path,
            const std::string &section)
{
    if (endsWithGmt(path)) {
        workload::packTrace(trace, path, section);
    } else {
        std::ofstream out(path);
        if (!out)
            GMLAKE_FATAL("cannot write trace: ", path);
        trace.save(out);
    }
    std::cout << "trace recorded to " << path << " (" << trace.size()
              << " events" << (endsWithGmt(path) ? ", binary" : "")
              << ")\n";
}

/**
 * The comparison loop every replaying verb shares: fresh device +
 * allocator per kind, one run via @p runOne, results tabulated (and
 * CSV-appended / snapshotted on request).
 */
int
runAcrossAllocators(
    const Options &opt, std::uint64_t servedTokens,
    const std::function<sim::RunResult(alloc::Allocator &,
                                       vmm::Device &)> &runOne)
{
    vmm::DeviceConfig deviceCfg;
    deviceCfg.capacity = opt.capacityGiB * GiB;
    core::GMLakeConfig gmlakeCfg;
    gmlakeCfg.fragLimit = opt.fragLimitMiB * MiB;

    Table table({"Allocator", "Utilization", "Peak active",
                 "Peak reserved", "Sim time", "Throughput"});
    std::ofstream csv;
    if (!opt.csvPath.empty()) {
        csv.open(opt.csvPath, std::ios::app);
        if (!csv)
            GMLAKE_FATAL("cannot open CSV: ", opt.csvPath);
    }

    for (const auto kind : parseAllocators(opt.allocator)) {
        vmm::Device device(deviceCfg);
        const auto allocator =
            sim::makeAllocator(kind, device, gmlakeCfg);
        const auto r = runOne(*allocator, device);

        std::string throughput = "-";
        if (servedTokens > 0 && r.simTime > 0) {
            throughput = formatDouble(
                static_cast<double>(servedTokens) /
                    (static_cast<double>(r.simTime) * 1e-9),
                0) + " tok/s";
        } else if (r.samplesPerSec > 0.0) {
            throughput =
                formatDouble(r.samplesPerSec, 1) + " samples/s";
        }
        table.addRow(
            {r.allocator,
             r.oom ? "OOM" : formatPercent(r.utilization),
             formatBytes(r.peakActive), formatBytes(r.peakReserved),
             formatTime(r.simTime), throughput});
        if (csv.is_open()) {
            csv << r.allocator << "," << opt.model << ","
                << opt.strategies << "," << opt.gpus << ","
                << opt.batch << "," << r.utilization << ","
                << r.peakActive << "," << r.peakReserved << ","
                << r.simTime << "," << (r.oom ? 1 : 0) << "\n";
        }
        if (opt.snapshot)
            std::cout << allocator->snapshot().summary();
    }
    table.print(std::cout);
    return 0;
}

// -------------------------------------------------------- trace verbs

int
doTraceRun(const Options &opt)
{
    const auto cfg = makeTrainConfig(opt);
    const auto built = buildWorkload(opt, cfg);
    return runAcrossAllocators(
        opt, built.servedTokens,
        [&](alloc::Allocator &allocator, vmm::Device &device) {
            return sim::runTrace(allocator, device, built.trace,
                                 built.training ? &cfg : nullptr);
        });
}

int
doTraceRecord(const Options &opt, const std::string &outPath)
{
    const auto cfg = makeTrainConfig(opt);
    const auto built = buildWorkload(opt, cfg);
    saveTraceTo(built.trace, outPath, opt.model);
    return 0;
}

int
doTraceReplay(const Options &opt, const std::string &path)
{
    if (workload::looksLikeGmtFile(path)) {
        const auto file = workload::GmtFile::open(path);
        std::uint64_t events = 0;
        for (const auto &section : file->sections())
            events += section.events;
        std::cout << "replaying " << events << " events ("
                  << file->sections().size() << " section"
                  << (file->sections().size() == 1 ? "" : "s")
                  << ", streamed) from " << path << "\n";
        return runAcrossAllocators(
            opt, 0,
            [&](alloc::Allocator &allocator, vmm::Device &device) {
                if (file->sections().size() == 1) {
                    return sim::runSource(
                        allocator, device,
                        std::make_unique<
                            workload::BinaryTraceSource>(file, 0));
                }
                // Multi-section files replay as co-located tenants.
                sim::SimEngine engine(allocator, device);
                for (std::size_t i = 0; i < file->sections().size();
                     ++i) {
                    engine.addSession(sim::Session(
                        file->sections()[i].name,
                        std::make_unique<
                            workload::BinaryTraceSource>(file, i)));
                }
                return engine.run().combined;
            });
    }

    std::ifstream in(path);
    if (!in)
        GMLAKE_FATAL("cannot open trace: ", path);
    const workload::Trace trace = workload::Trace::load(in);
    std::cout << "replaying " << trace.size() << " events from "
              << path << "\n";
    return runAcrossAllocators(
        opt, 0,
        [&](alloc::Allocator &allocator, vmm::Device &device) {
            return sim::runTrace(allocator, device, trace);
        });
}

int
doTracePack(const std::vector<std::string> &paths)
{
    const std::string &outPath = paths.back();
    if (!endsWithGmt(outPath))
        GMLAKE_FATAL("pack output must end in .gmt, got: ", outPath);

    workload::GmtWriter writer(outPath);
    std::uint64_t events = 0;
    for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
        std::ifstream in(paths[i]);
        if (!in)
            GMLAKE_FATAL("cannot open trace: ", paths[i]);
        const workload::Trace trace = workload::Trace::load(in);
        writer.beginSection(sectionNameFor(paths[i]));
        workload::VectorSource source(&trace);
        writer.append(source);
        events += trace.size();
    }
    writer.finish();

    std::ifstream sized(outPath, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<std::uint64_t>(sized.tellg());
    std::cout << "packed " << (paths.size() - 1) << " trace"
              << (paths.size() == 2 ? "" : "s") << ", " << events
              << " events into " << outPath << " ("
              << formatBytes(bytes) << ")\n";
    return 0;
}

int
doTraceInfo(const std::string &path)
{
    const auto file = workload::GmtFile::open(path);
    std::cout << path << ": gmt v" << file->version() << ", "
              << formatBytes(file->fileBytes()) << ", "
              << file->sections().size() << " section"
              << (file->sections().size() == 1 ? "" : "s") << "\n";
    Table table({"Section", "Events", "Chunks", "Bytes", "Allocs",
                 "Alloc bytes", "Max alloc", "Iters"});
    for (const auto &s : file->sections()) {
        table.addRow({s.name, std::to_string(s.events),
                      std::to_string(s.chunks),
                      formatBytes(s.byteLength),
                      std::to_string(s.stats.allocCount),
                      formatBytes(s.stats.totalAllocBytes),
                      formatBytes(s.stats.maxAllocBytes),
                      std::to_string(s.stats.iterations)});
    }
    table.print(std::cout);
    return 0;
}

// ----------------------------------------------------------- dispatch

int
cmdList()
{
    Table table({"Name", "Kind", "Title"});
    for (const auto &e : sim::allExperiments())
        table.addRow({e.name, e.kind, e.title});
    table.print(std::cout);
    std::cout << "\nrun one with: gmlake_sim run <name> "
                 "[--iterations N] [--threads N] "
                 "[--engine-threads N] [--csv] [--json] "
                 "[--out FILE]\n";
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: gmlake_sim run <scenario> [options]\n"
                     "       (gmlake_sim list shows the scenarios)\n";
        return 1;
    }
    const std::string name = argv[2];
    // The scenario argument doubles as argv[0] of the experiment
    // CLI, so flags start right after it.
    if (name == "all") {
        int rc = 0;
        for (const auto &e : sim::allExperiments())
            rc |= sim::experimentMain(e.name, argc - 2, argv + 2);
        return rc;
    }
    if (sim::findExperiment(name) == nullptr) {
        std::cerr << "unknown scenario: " << name
                  << " (gmlake_sim list shows the scenarios)\n";
        return 1;
    }
    return sim::experimentMain(name, argc - 2, argv + 2);
}

int
cmdTrace(int argc, char **argv)
{
    const auto usage = [] {
        std::cerr <<
            "usage: gmlake_sim trace run    [options]\n"
            "       gmlake_sim trace record OUT [options]\n"
            "       gmlake_sim trace replay FILE [options]\n"
            "       gmlake_sim trace pack   IN... OUT.gmt\n"
            "       gmlake_sim trace info   FILE.gmt\n"
            "       (gmlake_sim --help shows the options)\n";
        return 1;
    };
    if (argc < 3)
        return usage();
    const std::string verb = argv[2];

    if (verb == "run") {
        const Options opt = parseFlags(
            argc, argv, 3,
            kWorkloadFlags | kDeviceFlags | kOutputFlags, nullptr);
        if (opt.help) {
            printHelp();
            return 0;
        }
        if (opt.listModels)
            return doListModels();
        return doTraceRun(opt);
    }
    if (verb == "record") {
        std::vector<std::string> paths;
        const Options opt =
            parseFlags(argc, argv, 3, kWorkloadFlags, &paths);
        if (opt.help) {
            printHelp();
            return 0;
        }
        if (opt.listModels)
            return doListModels();
        if (paths.size() != 1)
            return usage();
        return doTraceRecord(opt, paths[0]);
    }
    if (verb == "replay") {
        std::vector<std::string> paths;
        const Options opt = parseFlags(
            argc, argv, 3, kDeviceFlags | kOutputFlags, &paths);
        if (opt.help) {
            printHelp();
            return 0;
        }
        if (paths.size() != 1)
            return usage();
        return doTraceReplay(opt, paths[0]);
    }
    if (verb == "pack") {
        std::vector<std::string> paths;
        const Options opt = parseFlags(argc, argv, 3, 0, &paths);
        if (opt.help) {
            printHelp();
            return 0;
        }
        if (paths.size() < 2)
            return usage();
        return doTracePack(paths);
    }
    if (verb == "info") {
        std::vector<std::string> paths;
        const Options opt = parseFlags(argc, argv, 3, 0, &paths);
        if (opt.help) {
            printHelp();
            return 0;
        }
        if (paths.size() != 1)
            return usage();
        return doTraceInfo(paths[0]);
    }
    std::cerr << "unknown trace verb: " << verb << "\n";
    return usage();
}

// -------------------------------------------------------- sweep verb

/** `gmlake_sim sweep` options (separate from the trace table). */
struct SweepCliOptions
{
    std::string scenario;
    std::string allocator = "gmlake";
    std::string gridSpec;
    std::size_t randomPoints = 0;
    std::size_t threads = 1;
    std::size_t engineThreads = 1;
    std::uint64_t seed = 42;
    int iterations = 0; //!< 0 = scenario default
    Bytes capacityGiB = 0;
    bool cold = false;
    std::string outPath;
    bool help = false;
};

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::size_t begin = 0;
    while (begin <= s.size()) {
        const std::size_t end = s.find(sep, begin);
        if (end == std::string::npos) {
            parts.push_back(s.substr(begin));
            break;
        }
        parts.push_back(s.substr(begin, end - begin));
        begin = end + 1;
    }
    return parts;
}

double
parseReal(const char *what, const std::string &value)
{
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        if (consumed == value.size())
            return parsed;
    } catch (const std::exception &) {
    }
    GMLAKE_FATAL(what, ": bad real number '", value, "'");
}

/**
 * Parse "frag=2,16;tol=0,0.125;sblocks=4096;overscribe=4,8;
 * stitch=on,off" into grid axes (frag in MiB; unknown keys are a
 * hard error so typos do not silently sweep nothing).
 */
sim::SweepGrid
parseGridSpec(const std::string &spec)
{
    sim::SweepGrid grid;
    for (const std::string &axis : splitOn(spec, ';')) {
        if (axis.empty())
            continue;
        const std::size_t eq = axis.find('=');
        if (eq == std::string::npos)
            GMLAKE_FATAL("sweep grid axis '", axis,
                         "' has no '=' (expected KEY=V1,V2,...)");
        const std::string key = axis.substr(0, eq);
        const std::vector<std::string> values =
            splitOn(axis.substr(eq + 1), ',');
        if (values.empty() ||
            (values.size() == 1 && values[0].empty()))
            GMLAKE_FATAL("sweep grid axis '", key, "' has no values");
        for (const std::string &value : values) {
            if (key == "frag") {
                grid.fragLimits.push_back(
                    parseNumber("frag", value) * MiB);
            } else if (key == "tol") {
                grid.nearMatchTolerances.push_back(
                    parseReal("tol", value));
            } else if (key == "sblocks") {
                grid.maxCachedSBlocks.push_back(
                    static_cast<std::size_t>(
                        parseNumber("sblocks", value)));
            } else if (key == "overscribe") {
                grid.maxVaOverscribes.push_back(
                    parseReal("overscribe", value));
            } else if (key == "stitch") {
                if (value != "on" && value != "off")
                    GMLAKE_FATAL("sweep grid axis stitch: expected "
                                 "on/off, got '", value, "'");
                grid.enableStitching.push_back(value == "on");
            } else {
                GMLAKE_FATAL("unknown sweep grid axis '", key,
                             "' (frag | tol | sblocks | overscribe "
                             "| stitch)");
            }
        }
    }
    return grid;
}

SweepCliOptions
parseSweepFlags(int argc, char **argv)
{
    SweepCliOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                GMLAKE_FATAL("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            opt.help = true;
        else if (arg == "--allocator")
            opt.allocator = value();
        else if (arg == "--grid")
            opt.gridSpec = value();
        else if (arg == "--points")
            opt.randomPoints = static_cast<std::size_t>(
                parseNumber("--points", value()));
        else if (arg == "--threads")
            opt.threads = static_cast<std::size_t>(
                parseNumber("--threads", value()));
        else if (arg == "--engine-threads")
            opt.engineThreads = static_cast<std::size_t>(
                parseNumber("--engine-threads", value()));
        else if (arg == "--seed")
            opt.seed = parseNumber("--seed", value());
        else if (arg == "--iterations")
            opt.iterations = static_cast<int>(
                parseNumber("--iterations", value()));
        else if (arg == "--capacity")
            opt.capacityGiB = parseNumber("--capacity", value());
        else if (arg == "--cold")
            opt.cold = true;
        else if (arg == "--out")
            opt.outPath = value();
        else if (!arg.empty() && arg[0] == '-')
            GMLAKE_FATAL("unknown sweep flag: ", arg,
                         " (try --help)");
        else if (opt.scenario.empty())
            opt.scenario = arg;
        else
            GMLAKE_FATAL("unexpected argument: ", arg);
    }
    return opt;
}

int
cmdSweep(int argc, char **argv)
{
    const SweepCliOptions opt = parseSweepFlags(argc, argv);
    if (opt.help || opt.scenario.empty()) {
        std::cerr <<
            "usage: gmlake_sim sweep <scenario> [options]\n"
            "  scenarios: smoke | train | colocate\n"
            "  --allocator A       allocator kind (default gmlake)\n"
            "  --grid SPEC         frag=2,16;tol=0,0.125;"
            "sblocks=4096;overscribe=4,8;stitch=on,off\n"
            "                      (frag in MiB; omitted axes keep "
            "the base value)\n"
            "  --points N          random search with N points "
            "instead of a grid\n"
            "  --threads N         per-point fork threads "
            "(0 = all cores; results identical)\n"
            "  --engine-threads N  threads inside each replay\n"
            "  --seed N            workload seed (default 42)\n"
            "  --iterations N      scenario scale override\n"
            "  --capacity GiB      device capacity override\n"
            "  --cold              re-replay the warmup per point "
            "(baseline; same results)\n"
            "  --out FILE          report path (default "
            "BENCH_sweep_<scenario>.json)\n";
        return opt.help ? 0 : 1;
    }
    if (!opt.gridSpec.empty() && opt.randomPoints > 0)
        GMLAKE_FATAL("--grid and --points are mutually exclusive");

    const auto kind = sim::parseAllocatorKind(opt.allocator);
    if (!kind)
        GMLAKE_FATAL("unknown allocator: ", opt.allocator);

    sim::SweepScenario scenario = sim::buildSweepScenario(
        opt.scenario, opt.seed, opt.iterations);
    if (opt.capacityGiB != 0)
        scenario.device.capacity = opt.capacityGiB * GiB;

    std::vector<sim::SweepPoint> points;
    if (opt.randomPoints > 0) {
        points = sim::randomSweepPoints(scenario.base,
                                        opt.randomPoints, opt.seed);
    } else if (!opt.gridSpec.empty()) {
        points = parseGridSpec(opt.gridSpec).expand(scenario.base);
    } else {
        sim::SweepGrid grid;
        grid.fragLimits = {2_MiB, 16_MiB};
        grid.nearMatchTolerances = {0.0, 0.125};
        grid.enableStitching = {true, false};
        points = grid.expand(scenario.base);
    }

    sim::SweepRunOptions options;
    options.kind = *kind;
    options.threads = opt.threads;
    options.warmStart = !opt.cold;
    options.engineThreads = opt.engineThreads;

    std::cout << "sweep " << opt.scenario << ": " << points.size()
              << " points, " << (opt.cold ? "cold" : "warm-start")
              << ", split at " << formatTime(scenario.splitTime)
              << "\n";
    const sim::SweepReport report =
        sim::runSweep(scenario, points, options);

    Table table({"Point", "Frag", "Peak reserved", "Dev API",
                 "Sim time", "Wall", "Pareto"});
    for (const sim::SweepPointRecord &rec : report.points) {
        table.addRow(
            {rec.point.label,
             rec.tail.oom ? "OOM"
                          : formatPercent(rec.tail.fragmentation),
             formatBytes(rec.tail.peakReserved),
             formatTime(rec.tail.deviceApiTime),
             formatTime(rec.tail.simTime),
             formatTime(rec.pointWallNs),
             rec.onFrontier ? "*" : ""});
    }
    table.print(std::cout);
    std::cout << "warmup " << formatTime(report.warmupWallNs)
              << ", total " << formatTime(report.totalWallNs)
              << " (" << report.frontier().size()
              << " Pareto point"
              << (report.frontier().size() == 1 ? "" : "s") << ")\n";

    const std::string outPath =
        opt.outPath.empty() ? "BENCH_sweep_" + opt.scenario + ".json"
                            : opt.outPath;
    sim::SweepJsonMeta meta;
    meta.seed = opt.seed;
    meta.iterations = opt.iterations;
    meta.deviceCapacityBytes = opt.capacityGiB * GiB;
    meta.threads = opt.threads;
    meta.engineThreads = opt.engineThreads;
    meta.warmStart = !opt.cold;
    meta.splitTimeNs = scenario.splitTime;
    sim::writeSweepJson(report, meta, outPath);
    std::cout << "(report written to " << outPath << ")\n";
    return 0;
}

// -------------------------------------------------------- chaos verb

/** `gmlake_sim chaos` options. */
struct ChaosCliOptions
{
    std::string scenario;
    std::string allocator = "gmlake";
    std::string faultSpec;
    std::uint64_t faultSeed = 1;
    std::uint64_t seed = 42; //!< workload seed
    std::size_t soak = 1;
    int iterations = 0;
    std::size_t engineThreads = 1;
    double killChance = 0.25;
    std::string outPath;
    bool help = false;
};

ChaosCliOptions
parseChaosFlags(int argc, char **argv)
{
    ChaosCliOptions opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                GMLAKE_FATAL("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            opt.help = true;
        else if (arg == "--allocator")
            opt.allocator = value();
        else if (arg == "--faults")
            opt.faultSpec = value();
        else if (arg == "--fault-seed")
            opt.faultSeed = parseNumber("--fault-seed", value());
        else if (arg == "--seed")
            opt.seed = parseNumber("--seed", value());
        else if (arg == "--soak")
            opt.soak = static_cast<std::size_t>(
                parseNumber("--soak", value()));
        else if (arg == "--iterations")
            opt.iterations = static_cast<int>(
                parseNumber("--iterations", value()));
        else if (arg == "--engine-threads")
            opt.engineThreads = static_cast<std::size_t>(
                parseNumber("--engine-threads", value()));
        else if (arg == "--kill-chance")
            opt.killChance = parseReal("--kill-chance", value());
        else if (arg == "--out")
            opt.outPath = value();
        else if (!arg.empty() && arg[0] == '-')
            GMLAKE_FATAL("unknown chaos flag: ", arg,
                         " (try --help)");
        else if (opt.scenario.empty())
            opt.scenario = arg;
        else
            GMLAKE_FATAL("unexpected argument: ", arg);
    }
    return opt;
}

int
cmdChaos(int argc, char **argv)
{
    const ChaosCliOptions opt = parseChaosFlags(argc, argv);
    if (opt.help || opt.scenario.empty()) {
        std::cerr <<
            "usage: gmlake_sim chaos <scenario> [options]\n"
            "  scenarios: smoke | train | colocate\n"
            "  --faults SPEC       fault plan, e.g. "
            "create:p=0.02;map:n=5;cap:t=1000000,b=2G\n"
            "                      (apis: create map mapbatch "
            "setaccess copyd2h copyh2d cap)\n"
            "  --fault-seed N      fault/kill RNG seed (default 1)\n"
            "  --soak K            randomized trials; trial k uses\n"
            "                      a seed derived from --fault-seed\n"
            "                      and printed for replay\n"
            "  --kill-chance P     per-tenant scripted-kill "
            "probability (default 0.25)\n"
            "  --allocator A       allocator kind (default gmlake)\n"
            "  --seed N            workload seed (default 42)\n"
            "  --iterations N      scenario scale override\n"
            "  --engine-threads N  threads inside each replay\n"
            "  --out FILE          report path (default "
            "BENCH_chaos_<scenario>.json)\n"
            "exit codes: 0 clean, 2 tenant OOM, 3 injected-fault "
            "abort, 1 internal error\n";
        return opt.help ? 0 : 1;
    }
    const auto kind = sim::parseAllocatorKind(opt.allocator);
    if (!kind)
        GMLAKE_FATAL("unknown allocator: ", opt.allocator);
    if (opt.soak == 0)
        GMLAKE_FATAL("--soak needs at least 1 trial");
    if (opt.killChance < 0.0 || opt.killChance > 1.0)
        GMLAKE_FATAL("--kill-chance needs a probability in [0, 1]");

    sim::ChaosOptions options;
    options.scenario = opt.scenario;
    options.kind = *kind;
    options.workloadSeed = opt.seed;
    options.faultSeed = opt.faultSeed;
    options.faultSpec = opt.faultSpec;
    options.trials = opt.soak;
    options.iterations = opt.iterations;
    options.engineThreads = opt.engineThreads;
    options.killChance = opt.killChance;

    std::cout << "chaos " << opt.scenario << ": " << opt.soak
              << " trial" << (opt.soak == 1 ? "" : "s")
              << ", fault seed " << opt.faultSeed;
    if (!opt.faultSpec.empty()) {
        std::cout << ", plan "
                  << vmm::FaultPlan::parse(opt.faultSpec).describe();
    }
    std::cout << "\n";

    const sim::ChaosReport report = sim::runChaos(options);

    Table table({"Trial", "Fault seed", "Injected", "Recovered",
                 "Rollbacks", "Aborted", "OOM", "Lost", "Audit"});
    for (std::size_t k = 0; k < report.trials.size(); ++k) {
        const sim::ChaosTrialRecord &t = report.trials[k];
        // The per-trial seed line is the replay handle:
        //   gmlake_sim chaos <scenario> --fault-seed <seed> --soak 1
        table.addRow({std::to_string(k), std::to_string(t.faultSeed),
                      std::to_string(t.result.injectedFaults),
                      std::to_string(t.result.recovered),
                      std::to_string(t.result.rollbacks),
                      std::to_string(t.result.abortedSessions),
                      std::to_string(t.oomSessions),
                      formatBytes(t.capacityLost),
                      t.auditPassed ? "ok" : "FAIL"});
    }
    table.print(std::cout);
    for (const sim::ChaosTrialRecord &t : report.trials) {
        if (!t.auditPassed)
            std::cout << "trial with fault seed " << t.faultSeed
                      << " FAILED: " << t.error << "\n"
                      << "  replay: gmlake_sim chaos " << opt.scenario
                      << " --fault-seed " << t.faultSeed
                      << " --soak 1"
                      << (opt.faultSpec.empty()
                              ? std::string()
                              : " --faults '" + opt.faultSpec + "'")
                      << "\n";
    }
    std::cout << report.trials.size() << " trial"
              << (report.trials.size() == 1 ? "" : "s") << ", "
              << report.failures() << " failure"
              << (report.failures() == 1 ? "" : "s") << ", total "
              << formatTime(report.totalWallNs) << "\n";

    const std::string outPath =
        opt.outPath.empty() ? "BENCH_chaos_" + opt.scenario + ".json"
                            : opt.outPath;
    sim::writeChaosJson(report, options, outPath);
    std::cout << "(report written to " << outPath << ", exit code "
              << report.exitCode() << ")\n";
    return report.exitCode();
}

// -------------------------------------------------------- probe verb

/**
 * `gmlake_sim probe` — allocation provenance queries over a replay
 * recorded with the observability layer (sim/probe.hh).
 */
int
cmdProbe(int argc, char **argv)
{
    sim::ProbeOptions opt;
    std::string allocator = "gmlake";
    std::string scenario;
    bool help = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                GMLAKE_FATAL("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            help = true;
        else if (arg == "--allocator")
            allocator = value();
        else if (arg == "--seed")
            opt.seed = parseNumber("--seed", value());
        else if (arg == "--iterations")
            opt.iterations = static_cast<int>(
                parseNumber("--iterations", value()));
        else if (arg == "--engine-threads")
            opt.engineThreads = static_cast<std::size_t>(
                parseNumber("--engine-threads", value()));
        else if (arg == "--tensor")
            opt.tensor = parseNumber("--tensor", value());
        else if (arg == "--at")
            opt.atTick = parseNumber("--at", value());
        else if (arg == "--timeline")
            opt.timelinePath = value();
        else if (arg == "--top")
            opt.topAllocs = static_cast<std::size_t>(
                parseNumber("--top", value()));
        else if (!arg.empty() && arg[0] == '-')
            GMLAKE_FATAL("unknown probe flag: ", arg,
                         " (try --help)");
        else if (scenario.empty())
            scenario = arg;
        else
            GMLAKE_FATAL("unexpected argument: ", arg);
    }
    if (help || scenario.empty()) {
        std::cerr <<
            "usage: gmlake_sim probe <scenario> [options]\n"
            "  scenarios: smoke | train | colocate\n"
            "  --tensor T          which allocations backed tensor "
            "T, which pBlocks\n"
            "                      back each, how they were obtained "
            "(fresh / reuse /\n"
            "                      stitch / post-spill), and the "
            "device time charged\n"
            "  --at TICK           every tensor live at simulated "
            "time TICK, with\n"
            "                      the same provenance per binding\n"
            "  --allocator A       allocator kind (default gmlake)\n"
            "  --seed N            workload seed (default 42)\n"
            "  --iterations N      scenario scale override\n"
            "  --engine-threads N  threads inside the replay\n"
            "  --timeline FILE     also export the recorded timeline "
            "(Chrome JSON)\n"
            "  --top N             summary lists the top-N "
            "allocations (default 5)\n"
            "(no selector prints the ledger summary)\n";
        return help ? 0 : 1;
    }
    const auto kind = sim::parseAllocatorKind(allocator);
    if (!kind)
        GMLAKE_FATAL("unknown allocator: ", allocator);
    opt.kind = *kind;
    opt.scenario = scenario;
    if (opt.tensor && opt.atTick)
        GMLAKE_FATAL("--tensor and --at are mutually exclusive");
    sim::runProbe(opt, std::cout);
    return 0;
}

/** Bare-flag invocations: warn, then route to the trace verbs. */
int
legacyMain(int argc, char **argv)
{
    const Options opt = parseFlags(
        argc, argv, 1,
        kWorkloadFlags | kDeviceFlags | kOutputFlags | kLegacyFlags,
        nullptr);
    if (opt.help) {
        printHelp();
        return 0;
    }
    if (opt.listModels)
        return doListModels();

    const char *target = !opt.recordPath.empty()   ? "trace record"
                         : !opt.replayPath.empty() ? "trace replay"
                                                   : "trace run";
    std::cerr << "gmlake_sim: warning: bare flags are deprecated; "
                 "use `gmlake_sim "
              << target << "` (routing there now, see --help)\n";

    if (!opt.recordPath.empty() && !opt.replayPath.empty()) {
        // Historical convert mode: load then re-save (which now
        // packs to .gmt when the output asks for it).
        std::ifstream in(opt.replayPath);
        if (!in)
            GMLAKE_FATAL("cannot open trace: ", opt.replayPath);
        const workload::Trace trace = workload::Trace::load(in);
        saveTraceTo(trace, opt.recordPath,
                    sectionNameFor(opt.replayPath));
        return 0;
    }
    if (!opt.recordPath.empty())
        return doTraceRecord(opt, opt.recordPath);
    if (!opt.replayPath.empty())
        return doTraceReplay(opt, opt.replayPath);
    return doTraceRun(opt);
}

/**
 * Flags every verb accepts, applied and stripped before dispatch so
 * each verb's own table stays focused. One definition serves
 * run/trace/sweep/chaos/probe alike; an invalid level is fatal
 * (parseLogLevel). Returns the new argc.
 */
int
stripGlobalFlags(int argc, char **argv)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--log-level") == 0) {
            if (i + 1 >= argc)
                GMLAKE_FATAL("flag --log-level needs a value");
            setLogLevel(parseLogLevel(argv[++i]));
            continue;
        }
        argv[kept++] = argv[i];
    }
    return kept;
}

} // namespace

int
main(int argc, char **argv)
try {
    argc = stripGlobalFlags(argc, argv);
    if (argc < 2) {
        printHelp();
        return 0;
    }
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList();
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc, argv);
    if (std::strcmp(argv[1], "trace") == 0)
        return cmdTrace(argc, argv);
    if (std::strcmp(argv[1], "sweep") == 0)
        return cmdSweep(argc, argv);
    if (std::strcmp(argv[1], "chaos") == 0)
        return cmdChaos(argc, argv);
    if (std::strcmp(argv[1], "probe") == 0)
        return cmdProbe(argc, argv);
    if (argv[1][0] == '-')
        return legacyMain(argc, argv);
    std::cerr << "unknown subcommand: " << argv[1]
              << " (try --help)\n";
    return 1;
} catch (const gmlake::FatalError &) {
    return 1; // diagnostic already printed by GMLAKE_FATAL
} catch (const gmlake::PanicError &) {
    return 1; // diagnostic already printed by GMLAKE_PANIC
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
}
