/**
 * @file
 * gmlake_sim — command-line experiment runner.
 *
 * Runs a training or serving workload under any of the allocators on
 * a simulated GPU and reports the paper's metrics. Traces can be
 * recorded to and replayed from files.
 *
 * Examples:
 *   gmlake_sim --model OPT-13B --strategies LR --gpus 4 --batch 16
 *   gmlake_sim --model GPT-NeoX-20B --batch 72 --allocator all
 *   gmlake_sim --serve --model OPT-13B --max-batch 32
 *   gmlake_sim --model GPT-2 --record trace.txt
 *   gmlake_sim --replay trace.txt --allocator gmlake --snapshot
 *
 * Run with --help for the full flag list.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "alloc/snapshot.hh"
#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/units.hh"
#include "workload/servegen.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

struct Options
{
    // Workload
    std::string model = "OPT-13B";
    std::string strategies = "LR";
    std::string platform = "deepspeed";
    int gpus = 4;
    int batch = 16;
    int iterations = 12;
    int seqLen = 512;
    std::uint64_t seed = 42;
    bool serve = false;
    int serveRequests = 256;
    int serveMaxBatch = 32;

    // Device / allocator
    std::string allocator = "all";
    Bytes capacityGiB = 80;
    Bytes fragLimitMiB = 2;

    // I/O
    std::string recordPath;
    std::string replayPath;
    std::string csvPath;
    bool snapshot = false;
    bool help = false;
};

void
printHelp()
{
    std::cout <<
        "gmlake_sim — GMLake reproduction experiment runner\n\n"
        "Workload selection:\n"
        "  --model NAME        model from the zoo (default OPT-13B)\n"
        "  --list-models       print the model zoo and exit\n"
        "  --strategies S      N | R | LR | RO | LRO (default LR)\n"
        "  --platform P        deepspeed | fsdp | colossalai | ddp\n"
        "  --gpus N            data-parallel degree (default 4)\n"
        "  --batch N           per-GPU batch size (default 16)\n"
        "  --iterations N      training iterations (default 12)\n"
        "  --seq N             max sequence length (default 512)\n"
        "  --seed N            workload RNG seed (default 42)\n"
        "  --serve             serving workload instead of training\n"
        "  --requests N        serving: total requests (default 256)\n"
        "  --max-batch N       serving: concurrent requests (32)\n\n"
        "Device and allocator:\n"
        "  --allocator A       caching | gmlake | native |\n"
        "                      compacting | expandable | all\n"
        "  --capacity GiB      device memory (default 80)\n"
        "  --frag-limit MiB    GMLake fragmentation limit (default 2)\n\n"
        "Input/output:\n"
        "  --record FILE       write the generated trace and exit\n"
        "  --replay FILE       replay a recorded trace instead\n"
        "  --csv FILE          append result rows to a CSV file\n"
        "  --snapshot          print the allocator memory snapshot\n"
        "  --help              this text\n";
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            GMLAKE_FATAL("flag ", argv[i], " needs a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            opt.help = true;
        } else if (flag == "--list-models") {
            for (const auto &m : workload::allModels())
                std::cout << m.name << "\n";
            return std::nullopt;
        } else if (flag == "--model") {
            opt.model = need(i);
        } else if (flag == "--strategies") {
            opt.strategies = need(i);
        } else if (flag == "--platform") {
            opt.platform = need(i);
        } else if (flag == "--gpus") {
            opt.gpus = std::stoi(need(i));
        } else if (flag == "--batch") {
            opt.batch = std::stoi(need(i));
        } else if (flag == "--iterations") {
            opt.iterations = std::stoi(need(i));
        } else if (flag == "--seq") {
            opt.seqLen = std::stoi(need(i));
        } else if (flag == "--seed") {
            opt.seed = std::stoull(need(i));
        } else if (flag == "--serve") {
            opt.serve = true;
        } else if (flag == "--requests") {
            opt.serveRequests = std::stoi(need(i));
        } else if (flag == "--max-batch") {
            opt.serveMaxBatch = std::stoi(need(i));
        } else if (flag == "--allocator") {
            opt.allocator = need(i);
        } else if (flag == "--capacity") {
            opt.capacityGiB = std::stoull(need(i));
        } else if (flag == "--frag-limit") {
            opt.fragLimitMiB = std::stoull(need(i));
        } else if (flag == "--record") {
            opt.recordPath = need(i);
        } else if (flag == "--replay") {
            opt.replayPath = need(i);
        } else if (flag == "--csv") {
            opt.csvPath = need(i);
        } else if (flag == "--snapshot") {
            opt.snapshot = true;
        } else {
            GMLAKE_FATAL("unknown flag: ", flag,
                         " (try --help)");
        }
    }
    return opt;
}

workload::Platform
parsePlatform(const std::string &name)
{
    if (name == "deepspeed")
        return workload::Platform::deepspeedZero3;
    if (name == "fsdp")
        return workload::Platform::fsdp;
    if (name == "colossalai")
        return workload::Platform::colossalAi;
    if (name == "ddp")
        return workload::Platform::ddp;
    GMLAKE_FATAL("unknown platform: ", name);
}

std::vector<sim::AllocatorKind>
parseAllocators(const std::string &name)
{
    if (name == "caching")
        return {sim::AllocatorKind::caching};
    if (name == "gmlake")
        return {sim::AllocatorKind::gmlake};
    if (name == "native")
        return {sim::AllocatorKind::native};
    if (name == "compacting")
        return {sim::AllocatorKind::compacting};
    if (name == "expandable")
        return {sim::AllocatorKind::expandable};
    if (name == "all")
        return {sim::AllocatorKind::caching,
                sim::AllocatorKind::expandable,
                sim::AllocatorKind::gmlake,
                sim::AllocatorKind::compacting};
    GMLAKE_FATAL("unknown allocator: ", name);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    const Options &opt = *parsed;
    if (opt.help) {
        printHelp();
        return 0;
    }

    // ---------------------------------------------------------- trace
    workload::TrainConfig trainCfg;
    trainCfg.model = workload::findModel(opt.model);
    trainCfg.strategies = workload::Strategies::parse(opt.strategies);
    trainCfg.platform = parsePlatform(opt.platform);
    trainCfg.gpus = opt.gpus;
    trainCfg.batchSize = opt.batch;
    trainCfg.iterations = opt.iterations;
    trainCfg.seqLen = opt.seqLen;
    trainCfg.seed = opt.seed;

    workload::Trace trace;
    std::uint64_t servedTokens = 0;
    if (!opt.replayPath.empty()) {
        std::ifstream in(opt.replayPath);
        if (!in)
            GMLAKE_FATAL("cannot open trace: ", opt.replayPath);
        trace = workload::Trace::load(in);
        std::cout << "replaying " << trace.size() << " events from "
                  << opt.replayPath << "\n";
    } else if (opt.serve) {
        workload::ServeConfig serveCfg;
        serveCfg.model = trainCfg.model;
        serveCfg.requests = opt.serveRequests;
        serveCfg.maxBatch = opt.serveMaxBatch;
        serveCfg.seed = opt.seed;
        auto gen = workload::generateServingTrace(serveCfg);
        trace = std::move(gen.trace);
        servedTokens = gen.generatedTokens;
        std::cout << "serving workload: " << gen.servedRequests
                  << " requests, " << gen.generatedTokens
                  << " tokens\n";
    } else {
        trace = workload::generateTrainingTrace(trainCfg);
        std::cout << "workload: " << trainCfg.describe() << " ("
                  << trace.size() << " events)\n";
    }

    if (!opt.recordPath.empty()) {
        std::ofstream out(opt.recordPath);
        if (!out)
            GMLAKE_FATAL("cannot write trace: ", opt.recordPath);
        trace.save(out);
        std::cout << "trace recorded to " << opt.recordPath << "\n";
        return 0;
    }

    // ------------------------------------------------------------ run
    vmm::DeviceConfig deviceCfg;
    deviceCfg.capacity = opt.capacityGiB * GiB;
    core::GMLakeConfig gmlakeCfg;
    gmlakeCfg.fragLimit = opt.fragLimitMiB * MiB;

    Table table({"Allocator", "Utilization", "Peak active",
                 "Peak reserved", "Sim time", "Throughput"});
    std::ofstream csv;
    if (!opt.csvPath.empty()) {
        csv.open(opt.csvPath, std::ios::app);
        if (!csv)
            GMLAKE_FATAL("cannot open CSV: ", opt.csvPath);
    }

    for (const auto kind : parseAllocators(opt.allocator)) {
        vmm::Device device(deviceCfg);
        const auto allocator =
            sim::makeAllocator(kind, device, gmlakeCfg);
        const auto r = sim::runTrace(
            *allocator, device, trace,
            opt.serve || !opt.replayPath.empty() ? nullptr
                                                 : &trainCfg);

        std::string throughput = "-";
        if (opt.serve && r.simTime > 0) {
            throughput = formatDouble(
                static_cast<double>(servedTokens) /
                    (static_cast<double>(r.simTime) * 1e-9),
                0) + " tok/s";
        } else if (r.samplesPerSec > 0.0) {
            throughput =
                formatDouble(r.samplesPerSec, 1) + " samples/s";
        }
        table.addRow(
            {r.allocator,
             r.oom ? "OOM" : formatPercent(r.utilization),
             formatBytes(r.peakActive), formatBytes(r.peakReserved),
             formatTime(r.simTime), throughput});
        if (csv.is_open()) {
            csv << r.allocator << "," << opt.model << ","
                << opt.strategies << "," << opt.gpus << ","
                << opt.batch << "," << r.utilization << ","
                << r.peakActive << "," << r.peakReserved << ","
                << r.simTime << "," << (r.oom ? 1 : 0) << "\n";
        }
        if (opt.snapshot)
            std::cout << allocator->snapshot().summary();
    }
    table.print(std::cout);
    return 0;
}
