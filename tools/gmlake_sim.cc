/**
 * @file
 * gmlake_sim — command-line experiment runner.
 *
 * Two modes:
 *
 * Registry mode drives the shared experiment registry — the same
 * scenarios the bench_* binaries and CI run:
 *   gmlake_sim list
 *   gmlake_sim run headline --csv
 *   gmlake_sim run fig10 --json --iterations 4
 *   gmlake_sim run all --iterations 1
 *
 * Ad-hoc mode runs a single workload under any of the allocators on
 * a simulated GPU and reports the paper's metrics. Traces can be
 * recorded to and replayed from files:
 *   gmlake_sim --model OPT-13B --strategies LR --gpus 4 --batch 16
 *   gmlake_sim --model GPT-NeoX-20B --batch 72 --allocator all
 *   gmlake_sim --serve --model OPT-13B --max-batch 32
 *   gmlake_sim --model GPT-2 --record trace.txt
 *   gmlake_sim --replay trace.txt --allocator gmlake --snapshot
 *
 * Run with --help for the full flag list.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "alloc/snapshot.hh"
#include "sim/experiment.hh"
#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/units.hh"
#include "workload/servegen.hh"
#include "workload/tracegen.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

struct Options
{
    // Workload
    std::string model = "OPT-13B";
    std::string strategies = "LR";
    std::string platform = "deepspeed";
    int gpus = 4;
    int batch = 16;
    int iterations = 12;
    int seqLen = 512;
    std::uint64_t seed = 42;
    bool serve = false;
    int serveRequests = 256;
    int serveMaxBatch = 32;

    // Device / allocator
    std::string allocator = "all";
    Bytes capacityGiB = 80;
    Bytes fragLimitMiB = 2;

    // I/O
    std::string recordPath;
    std::string replayPath;
    std::string csvPath;
    bool snapshot = false;
    bool help = false;
};

void
printHelp()
{
    std::cout <<
        "gmlake_sim — GMLake reproduction experiment runner\n\n"
        "Registered experiments (figures/tables via the shared "
        "registry):\n"
        "  list                print every registered scenario\n"
        "  run NAME [opts]     run one scenario ('all' runs every "
        "one)\n"
        "      --iterations N  override training iterations\n"
        "      --capacity GiB  override device capacity\n"
        "      --seed N        override the workload seed\n"
        "      --threads N     worker threads for cluster scenarios\n"
        "                      (0 = all cores; results identical)\n"
        "      --csv [FILE]    append run records as CSV\n"
        "      --json [FILE]   write report (BENCH_<name>.json)\n"
        "      --out FILE      write the JSON report to FILE instead\n"
        "                      of the fixed BENCH_<name>.json\n\n"
        "Ad-hoc workloads:\n\n"
        "Workload selection:\n"
        "  --model NAME        model from the zoo (default OPT-13B)\n"
        "  --list-models       print the model zoo and exit\n"
        "  --strategies S      N | R | LR | RO | LRO (default LR)\n"
        "  --platform P        deepspeed | fsdp | colossalai | ddp\n"
        "  --gpus N            data-parallel degree (default 4)\n"
        "  --batch N           per-GPU batch size (default 16)\n"
        "  --iterations N      training iterations (default 12)\n"
        "  --seq N             max sequence length (default 512)\n"
        "  --seed N            workload RNG seed (default 42)\n"
        "  --serve             serving workload instead of training\n"
        "  --requests N        serving: total requests (default 256)\n"
        "  --max-batch N       serving: concurrent requests (32)\n\n"
        "Device and allocator:\n"
        "  --allocator A       caching | gmlake | native |\n"
        "                      compacting | expandable | all\n"
        "  --capacity GiB      device memory (default 80)\n"
        "  --frag-limit MiB    GMLake fragmentation limit (default 2)\n\n"
        "Input/output:\n"
        "  --record FILE       write the generated trace and exit\n"
        "  --replay FILE       replay a recorded trace instead\n"
        "  --csv FILE          append result rows to a CSV file\n"
        "  --snapshot          print the allocator memory snapshot\n"
        "  --help              this text\n";
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            GMLAKE_FATAL("flag ", argv[i], " needs a value");
        return argv[++i];
    };
    auto num = [&](int &i) -> unsigned long long {
        const std::string flag = argv[i];
        const char *value = need(i);
        unsigned long long parsed = 0;
        std::size_t consumed = 0;
        if (value[0] >= '0' && value[0] <= '9') {
            try {
                parsed = std::stoull(value, &consumed);
            } catch (const std::exception &) {
                consumed = 0;
            }
        }
        if (consumed == 0 || value[consumed] != '\0')
            GMLAKE_FATAL("flag ", flag, " needs a non-negative "
                         "number, got '", value, "'");
        return parsed;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            opt.help = true;
        } else if (flag == "--list-models") {
            for (const auto &m : workload::allModels())
                std::cout << m.name << "\n";
            return std::nullopt;
        } else if (flag == "--model") {
            opt.model = need(i);
        } else if (flag == "--strategies") {
            opt.strategies = need(i);
        } else if (flag == "--platform") {
            opt.platform = need(i);
        } else if (flag == "--gpus") {
            opt.gpus = static_cast<int>(num(i));
        } else if (flag == "--batch") {
            opt.batch = static_cast<int>(num(i));
        } else if (flag == "--iterations") {
            opt.iterations = static_cast<int>(num(i));
        } else if (flag == "--seq") {
            opt.seqLen = static_cast<int>(num(i));
        } else if (flag == "--seed") {
            opt.seed = num(i);
        } else if (flag == "--serve") {
            opt.serve = true;
        } else if (flag == "--requests") {
            opt.serveRequests = static_cast<int>(num(i));
        } else if (flag == "--max-batch") {
            opt.serveMaxBatch = static_cast<int>(num(i));
        } else if (flag == "--allocator") {
            opt.allocator = need(i);
        } else if (flag == "--capacity") {
            opt.capacityGiB = num(i);
        } else if (flag == "--frag-limit") {
            opt.fragLimitMiB = num(i);
        } else if (flag == "--record") {
            opt.recordPath = need(i);
        } else if (flag == "--replay") {
            opt.replayPath = need(i);
        } else if (flag == "--csv") {
            opt.csvPath = need(i);
        } else if (flag == "--snapshot") {
            opt.snapshot = true;
        } else {
            GMLAKE_FATAL("unknown flag: ", flag,
                         " (try --help)");
        }
    }
    return opt;
}

workload::Platform
parsePlatform(const std::string &name)
{
    if (name == "deepspeed")
        return workload::Platform::deepspeedZero3;
    if (name == "fsdp")
        return workload::Platform::fsdp;
    if (name == "colossalai")
        return workload::Platform::colossalAi;
    if (name == "ddp")
        return workload::Platform::ddp;
    GMLAKE_FATAL("unknown platform: ", name);
}

std::vector<sim::AllocatorKind>
parseAllocators(const std::string &name)
{
    if (name == "all") {
        // Every kind except native, which is ~10x slower end to end
        // and would dominate the run for no comparative value (ask
        // for it by name).
        std::vector<sim::AllocatorKind> kinds;
        for (const auto kind : sim::allAllocatorKinds()) {
            if (kind != sim::AllocatorKind::native)
                kinds.push_back(kind);
        }
        return kinds;
    }
    // Single allocator names share the registry/test mapping.
    if (const auto kind = sim::parseAllocatorKind(name))
        return {*kind};
    GMLAKE_FATAL("unknown allocator: ", name);
}

int
cmdList()
{
    Table table({"Name", "Kind", "Title"});
    for (const auto &e : sim::allExperiments())
        table.addRow({e.name, e.kind, e.title});
    table.print(std::cout);
    std::cout << "\nrun one with: gmlake_sim run <name> "
                 "[--iterations N] [--threads N] [--csv] [--json] "
                 "[--out FILE]\n";
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: gmlake_sim run <scenario> [options]\n"
                     "       (gmlake_sim list shows the scenarios)\n";
        return 1;
    }
    const std::string name = argv[2];
    // The scenario argument doubles as argv[0] of the experiment
    // CLI, so flags start right after it.
    if (name == "all") {
        int rc = 0;
        for (const auto &e : sim::allExperiments())
            rc |= sim::experimentMain(e.name, argc - 2, argv + 2);
        return rc;
    }
    if (sim::findExperiment(name) == nullptr) {
        std::cerr << "unknown scenario: " << name
                  << " (gmlake_sim list shows the scenarios)\n";
        return 1;
    }
    return sim::experimentMain(name, argc - 2, argv + 2);
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc >= 2 && std::strcmp(argv[1], "list") == 0)
        return cmdList();
    if (argc >= 2 && std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc, argv);

    const auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    const Options &opt = *parsed;
    if (opt.help) {
        printHelp();
        return 0;
    }

    // ---------------------------------------------------------- trace
    workload::TrainConfig trainCfg;
    trainCfg.model = workload::findModel(opt.model);
    trainCfg.strategies = workload::Strategies::parse(opt.strategies);
    trainCfg.platform = parsePlatform(opt.platform);
    trainCfg.gpus = opt.gpus;
    trainCfg.batchSize = opt.batch;
    trainCfg.iterations = opt.iterations;
    trainCfg.seqLen = opt.seqLen;
    trainCfg.seed = opt.seed;

    workload::Trace trace;
    std::uint64_t servedTokens = 0;
    if (!opt.replayPath.empty()) {
        std::ifstream in(opt.replayPath);
        if (!in)
            GMLAKE_FATAL("cannot open trace: ", opt.replayPath);
        trace = workload::Trace::load(in);
        std::cout << "replaying " << trace.size() << " events from "
                  << opt.replayPath << "\n";
    } else if (opt.serve) {
        workload::ServeConfig serveCfg;
        serveCfg.model = trainCfg.model;
        serveCfg.requests = opt.serveRequests;
        serveCfg.maxBatch = opt.serveMaxBatch;
        serveCfg.seed = opt.seed;
        auto gen = workload::generateServingTrace(serveCfg);
        trace = std::move(gen.trace);
        servedTokens = gen.generatedTokens;
        std::cout << "serving workload: " << gen.servedRequests
                  << " requests, " << gen.generatedTokens
                  << " tokens\n";
    } else {
        trace = workload::generateTrainingTrace(trainCfg);
        std::cout << "workload: " << trainCfg.describe() << " ("
                  << trace.size() << " events)\n";
    }

    if (!opt.recordPath.empty()) {
        std::ofstream out(opt.recordPath);
        if (!out)
            GMLAKE_FATAL("cannot write trace: ", opt.recordPath);
        trace.save(out);
        std::cout << "trace recorded to " << opt.recordPath << "\n";
        return 0;
    }

    // ------------------------------------------------------------ run
    vmm::DeviceConfig deviceCfg;
    deviceCfg.capacity = opt.capacityGiB * GiB;
    core::GMLakeConfig gmlakeCfg;
    gmlakeCfg.fragLimit = opt.fragLimitMiB * MiB;

    Table table({"Allocator", "Utilization", "Peak active",
                 "Peak reserved", "Sim time", "Throughput"});
    std::ofstream csv;
    if (!opt.csvPath.empty()) {
        csv.open(opt.csvPath, std::ios::app);
        if (!csv)
            GMLAKE_FATAL("cannot open CSV: ", opt.csvPath);
    }

    for (const auto kind : parseAllocators(opt.allocator)) {
        vmm::Device device(deviceCfg);
        const auto allocator =
            sim::makeAllocator(kind, device, gmlakeCfg);
        const auto r = sim::runTrace(
            *allocator, device, trace,
            opt.serve || !opt.replayPath.empty() ? nullptr
                                                 : &trainCfg);

        std::string throughput = "-";
        if (opt.serve && r.simTime > 0) {
            throughput = formatDouble(
                static_cast<double>(servedTokens) /
                    (static_cast<double>(r.simTime) * 1e-9),
                0) + " tok/s";
        } else if (r.samplesPerSec > 0.0) {
            throughput =
                formatDouble(r.samplesPerSec, 1) + " samples/s";
        }
        table.addRow(
            {r.allocator,
             r.oom ? "OOM" : formatPercent(r.utilization),
             formatBytes(r.peakActive), formatBytes(r.peakReserved),
             formatTime(r.simTime), throughput});
        if (csv.is_open()) {
            csv << r.allocator << "," << opt.model << ","
                << opt.strategies << "," << opt.gpus << ","
                << opt.batch << "," << r.utilization << ","
                << r.peakActive << "," << r.peakReserved << ","
                << r.simTime << "," << (r.oom ? 1 : 0) << "\n";
        }
        if (opt.snapshot)
            std::cout << allocator->snapshot().summary();
    }
    table.print(std::cout);
    return 0;
} catch (const gmlake::FatalError &) {
    return 1; // diagnostic already printed by GMLAKE_FATAL
} catch (const gmlake::PanicError &) {
    return 1; // diagnostic already printed by GMLAKE_PANIC
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
}
