/**
 * @file
 * Scenario example: choosing a memory-reduction strategy mix for
 * fine-tuning OPT-13B on four 80 GB GPUs.
 *
 * The intro of the paper motivates exactly this situation: LoRA,
 * recomputation and offloading cut the model-state footprint, but
 * they fragment the caching allocator. This example sweeps the
 * strategy combinations under both allocators and prints what a
 * practitioner would look at: does it fit, how much memory does it
 * really cost, and what does it do to throughput.
 */

#include <iostream>

#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

int
main()
{
    workload::TrainConfig base;
    base.model = workload::findModel("OPT-13B");
    base.gpus = 4;
    base.batchSize = 24;
    base.iterations = 10;

    std::cout << "Fine-tuning " << base.model.name << " on "
              << base.gpus << " GPUs, batch " << base.batchSize
              << " per GPU\n\n";

    Table table({"Strategy", "Model state", "Caching: reserved",
                 "GMLake: reserved", "GMLake gain", "Thr (s/s)"});
    for (const char *strat : {"N", "R", "LR", "RO", "LRO"}) {
        workload::TrainConfig cfg = base;
        cfg.strategies = workload::Strategies::parse(strat);
        const Bytes persistent =
            workload::estimatePersistentBytes(cfg);

        const auto caching =
            sim::runScenario(cfg, sim::AllocatorKind::caching);
        const auto lake =
            sim::runScenario(cfg, sim::AllocatorKind::gmlake);

        std::string gain = "-";
        if (!caching.oom && !lake.oom &&
            caching.peakReserved > lake.peakReserved) {
            gain = formatBytes(caching.peakReserved -
                               lake.peakReserved);
        }
        table.addRow(
            {strat, formatBytes(persistent),
             caching.oom ? "OOM" : formatBytes(caching.peakReserved),
             lake.oom ? "OOM" : formatBytes(lake.peakReserved), gain,
             lake.oom ? "-" : formatDouble(lake.samplesPerSec, 1)});
    }
    table.print(std::cout);

    std::cout << "\nReading the table: the strategies shrink the "
                 "model state, but under the\ncaching allocator part "
                 "of the saving is lost to fragmentation; GMLake\n"
                 "returns it without touching the training code.\n";
    return 0;
}
