/**
 * @file
 * Scenario example: how large a batch can you actually train?
 *
 * For each allocator, binary-search the largest per-GPU batch size
 * that completes a GPT-NeoX-20B fine-tuning run without OOM on the
 * 80 GB device. GMLake's defragmentation converts reserved-but-
 * wasted memory back into batch headroom (the Fig 13 story).
 */

#include <iostream>

#include "sim/runner.hh"
#include "support/strings.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

namespace
{

workload::TrainConfig
config(int batch)
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = batch;
    cfg.iterations = 6;
    return cfg;
}

int
largestFittingBatch(sim::AllocatorKind kind)
{
    int lo = 1, hi = 256;
    // Invariant: lo fits, hi does not.
    if (sim::runScenario(config(hi), kind).oom == false)
        return hi;
    while (hi - lo > 1) {
        const int mid = (lo + hi) / 2;
        const auto r = sim::runScenario(config(mid), kind);
        (r.oom ? hi : lo) = mid;
    }
    return lo;
}

} // namespace

int
main()
{
    std::cout << "GPT-NeoX-20B, LoRA + recomputation, 4x80GB "
                 "(ZeRO-3):\n\n";

    const int cachingMax =
        largestFittingBatch(sim::AllocatorKind::caching);
    const int lakeMax = largestFittingBatch(sim::AllocatorKind::gmlake);

    const auto atCachingLimit =
        sim::runScenario(config(cachingMax),
                         sim::AllocatorKind::caching);
    const auto atLakeLimit =
        sim::runScenario(config(lakeMax), sim::AllocatorKind::gmlake);

    std::cout << "  caching allocator: max batch " << cachingMax
              << " per GPU (reserved "
              << formatBytes(atCachingLimit.peakReserved)
              << ", utilization "
              << formatPercent(atCachingLimit.utilization) << ")\n";
    std::cout << "  GMLake:            max batch " << lakeMax
              << " per GPU (reserved "
              << formatBytes(atLakeLimit.peakReserved)
              << ", utilization "
              << formatPercent(atLakeLimit.utilization) << ")\n\n";

    if (lakeMax > cachingMax) {
        std::cout << "GMLake sustains a "
                  << formatPercent(
                         static_cast<double>(lakeMax - cachingMax) /
                             cachingMax,
                         0)
                  << " larger batch on the same hardware — the "
                     "memory the baseline loses to\nfragmentation "
                     "becomes usable batch headroom.\n";
    }
    return 0;
}
