/**
 * @file
 * Tooling example: record a training allocation trace to a file,
 * reload it, and replay it against any allocator.
 *
 * Traces are allocator-agnostic request streams, so a single recorded
 * workload can be replayed under different allocator configurations —
 * the workflow used to tune GMLake's knobs offline.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/runner.hh"
#include "support/strings.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

int
main()
{
    // 1. Generate a workload trace and record it.
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-2");
    cfg.platform = workload::Platform::colossalAi;
    cfg.strategies = workload::Strategies::parse("R");
    cfg.gpus = 4;
    cfg.batchSize = 32;
    cfg.iterations = 5;

    const auto recorded = workload::generateTrainingTrace(cfg);
    const char *path = "gpt2_cai.trace";
    {
        std::ofstream out(path);
        recorded.save(out);
    }
    std::cout << "recorded " << recorded.size() << " events ("
              << recorded.stats().allocCount << " allocations, avg "
              << formatBytes(static_cast<Bytes>(
                     recorded.stats().avgAllocBytes()))
              << ") to " << path << "\n";

    // 2. Load it back and verify it round-trips.
    std::ifstream in(path);
    const auto loaded = workload::Trace::load(in);
    std::cout << "reloaded " << loaded.size() << " events\n\n";

    // 3. Replay under each allocator.
    for (const auto kind :
         {sim::AllocatorKind::caching, sim::AllocatorKind::gmlake}) {
        vmm::Device device;
        const auto allocator = sim::makeAllocator(kind, device);
        const auto r = sim::runTrace(*allocator, device, loaded, &cfg);
        std::cout << "  " << r.allocator << ": utilization "
                  << formatPercent(r.utilization) << ", reserved "
                  << formatBytes(r.peakReserved)
                  << (r.oom ? " [OOM]" : "") << "\n";
    }
    return 0;
}
