/**
 * @file
 * Scenario example: scaling GPT-NeoX-20B fine-tuning from one GPU to
 * a 16-GPU ZeRO-3 job.
 *
 * Sharding shrinks the per-GPU model state, but the full-size
 * parameter gathers and shard-sized communication buffers make the
 * request stream more irregular with every doubling (the paper's
 * Observation 2). This example shows the per-GPU memory picture and
 * the global throughput under both allocators at every scale.
 */

#include <iostream>

#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

int
main()
{
    workload::TrainConfig base;
    base.model = workload::findModel("GPT-NeoX-20B");
    base.platform = workload::Platform::deepspeedZero3;
    base.strategies = workload::Strategies::parse("LR");
    base.batchSize = 12;
    base.iterations = 10;

    std::cout << "Scaling " << base.model.name
              << " fine-tuning (LoRA + recompute, ZeRO-3), batch "
              << base.batchSize << " per GPU\n\n";

    Table table({"GPUs", "Model state/GPU", "Caching: frag",
                 "GMLake: frag", "Reserved saved", "Global thr (s/s)"});
    for (const int gpus : {1, 2, 4, 8, 16}) {
        workload::TrainConfig cfg = base;
        cfg.gpus = gpus;
        const auto caching =
            sim::runScenario(cfg, sim::AllocatorKind::caching);
        const auto lake =
            sim::runScenario(cfg, sim::AllocatorKind::gmlake);
        const Bytes saved =
            caching.peakReserved > lake.peakReserved
                ? caching.peakReserved - lake.peakReserved
                : 0;
        table.addRow(
            {std::to_string(gpus),
             formatBytes(workload::estimatePersistentBytes(cfg)),
             formatPercent(caching.fragmentation),
             formatPercent(lake.fragmentation), formatBytes(saved),
             formatDouble(lake.samplesPerSec, 1)});
    }
    table.print(std::cout);

    std::cout << "\nThe per-GPU state shrinks with scale, but the "
                 "baseline's fragmentation ratio\ngrows; stitching "
                 "keeps it flat, so the memory you paid for stays "
                 "usable.\n";
    return 0;
}
