/**
 * @file
 * Introspection example: the Figure 1 picture, live.
 *
 * Runs a few fine-tuning iterations under the caching allocator and
 * under GMLake, then prints each allocator's memory snapshot and an
 * ASCII map of the device's physical address space. The baseline's
 * map shows scattered free holes trapped between pinned segments;
 * GMLake's uniform 2 MB chunks keep the physical space dense.
 */

#include <iostream>
#include <unordered_map>

#include "alloc/snapshot.hh"
#include "sim/runner.hh"
#include "support/strings.hh"
#include "vmm/device.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

namespace
{

void
inspect(sim::AllocatorKind kind, const workload::Trace &trace)
{
    vmm::Device device;
    const auto allocator = sim::makeAllocator(kind, device);

    // Replay until mid-run (backward pass of a late iteration) so the
    // snapshot shows the allocator under load, not after teardown.
    const std::size_t stopAt = trace.size() * 3 / 5;
    std::unordered_map<workload::TensorId, alloc::AllocId> live;
    std::size_t index = 0;
    for (const auto &e : trace.events()) {
        if (++index > stopAt)
            break;
        switch (e.kind) {
          case workload::EventKind::alloc:
            live[e.tensor] =
                allocator->allocate(e.bytes, e.stream).value().id;
            break;
          case workload::EventKind::free:
            (void)allocator->deallocate(live[e.tensor]);
            live.erase(e.tensor);
            break;
          case workload::EventKind::compute:
            device.clock().advance(e.computeNs);
            break;
          case workload::EventKind::iterationMark:
            break;
          case workload::EventKind::streamSync:
            if (e.stream == kAnyStream)
                allocator->deviceSynchronize();
            else
                allocator->streamSynchronize(e.stream);
            break;
          case workload::EventKind::touch:
          case workload::EventKind::prefetch:
            break; // offload-tier events; no-op without a manager
        }
    }

    std::cout << allocator->snapshot().summary();
    const auto &stats = allocator->stats();
    std::cout << "  utilization: "
              << formatPercent(stats.utilizationRatio()) << "\n";
    std::cout << "  physical address space ('#' used, '.' free):\n  "
              << alloc::renderPhysicalMap(device.phys(), 72) << "\n\n";
}

} // namespace

int
main()
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 4;
    cfg.batchSize = 48;
    cfg.iterations = 6;

    std::cout << "Workload: " << cfg.describe() << "\n\n";

    const auto trace = workload::generateTrainingTrace(cfg);
    inspect(sim::AllocatorKind::caching, trace);
    inspect(sim::AllocatorKind::gmlake, trace);

    std::cout << "The caching allocator's space is pocked with "
                 "trapped holes; GMLake's\nchunk pool stays dense — "
                 "that density is exactly the reserved-memory\n"
                 "difference the paper reports.\n";
    return 0;
}
