/**
 * @file
 * Quickstart: allocate through GMLake directly, then compare the
 * caching allocator and GMLake on one fine-tuning scenario.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/gmlake_allocator.hh"
#include "sim/runner.hh"
#include "support/strings.hh"
#include "support/units.hh"

using namespace gmlake;
using namespace gmlake::literals;

namespace
{

void
directApiDemo()
{
    std::cout << "=== direct allocator API ===\n";
    vmm::Device device; // simulated A100-80GB
    core::GMLakeAllocator lake(device);

    // Allocate three tensors, free the outer two, then ask for a
    // block bigger than either hole: stitching fuses them.
    const auto a = lake.allocate(512_MiB).value();
    const auto b = lake.allocate(256_MiB).value();
    const auto c = lake.allocate(512_MiB).value();
    (void)b;
    lake.deallocate(a.id).code();
    lake.deallocate(c.id).code();

    const auto d = lake.allocate(1024_MiB).value();
    std::cout << "  allocated " << formatBytes(d.requested)
              << " across two non-contiguous holes\n"
              << "  stitches performed: " << lake.strategy().stitches
              << "\n  physical reserved: "
              << formatBytes(lake.physicalBytes()) << "\n";
    lake.checkConsistency();
}

void
scenarioDemo()
{
    std::cout << "\n=== OPT-13B, 4 GPU, LoRA+recompute (LR) ===\n";
    workload::TrainConfig config;
    config.model = workload::findModel("OPT-13B");
    config.platform = workload::Platform::deepspeedZero3;
    config.strategies = workload::Strategies::parse("LR");
    config.gpus = 4;
    config.batchSize = 16;
    config.iterations = 10;

    for (const auto kind : {sim::AllocatorKind::caching,
                            sim::AllocatorKind::gmlake}) {
        const auto r = sim::runScenario(config, kind);
        std::cout << "  " << r.allocator << ": peak active "
                  << formatBytes(r.peakActive) << ", peak reserved "
                  << formatBytes(r.peakReserved) << ", utilization "
                  << formatPercent(r.utilization) << ", throughput "
                  << formatDouble(r.samplesPerSec, 1) << " samples/s"
                  << (r.oom ? " [OOM]" : "") << "\n";
    }
}

} // namespace

int
main()
{
    directApiDemo();
    scenarioDemo();
    return 0;
}
