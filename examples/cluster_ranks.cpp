/**
 * @file
 * Cluster example: simulate every rank of an 8-GPU ZeRO-3 job, not
 * just rank 0. Ranks see different data, fragment differently, and
 * the job lives or dies with its worst rank — which is why per-rank
 * fragmentation variance matters in practice.
 */

#include <iostream>

#include "sim/cluster.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "workload/tracegen.hh"

using namespace gmlake;

int
main()
{
    workload::TrainConfig cfg;
    cfg.model = workload::findModel("GPT-NeoX-20B");
    cfg.strategies = workload::Strategies::parse("LR");
    cfg.gpus = 8;
    cfg.batchSize = 24;
    cfg.iterations = 8;

    std::cout << "Cluster job: " << cfg.describe() << "\n\n";

    for (const auto kind : {sim::AllocatorKind::caching,
                            sim::AllocatorKind::gmlake}) {
        const auto cluster = sim::runCluster(cfg, kind);
        std::cout << "--- " << sim::allocatorKindName(kind)
                  << " ---\n";
        Table table({"Rank", "Utilization", "Peak active",
                     "Peak reserved"});
        for (std::size_t r = 0; r < cluster.ranks.size(); ++r) {
            const auto &rr = cluster.ranks[r];
            table.addRow({std::to_string(r),
                          rr.oom ? "OOM"
                                 : formatPercent(rr.utilization),
                          formatBytes(rr.peakActive),
                          formatBytes(rr.peakReserved)});
        }
        table.print(std::cout);
        std::cout << "worst rank: " << cluster.worstRank()
                  << "  (reserved spread "
                  << formatBytes(cluster.maxPeakReserved() -
                                 cluster.minPeakReserved())
                  << ")  job throughput: "
                  << formatDouble(cluster.globalSamplesPerSec(cfg), 1)
                  << " samples/s"
                  << (cluster.anyOom() ? "  [JOB FAILED: OOM]" : "")
                  << "\n\n";
    }
    std::cout << "The baseline's per-rank spread is what produces "
                 "surprise OOMs on big jobs;\nGMLake's reserved "
                 "memory equals each rank's active peak, so the "
                 "spread is\njust the data distribution.\n";
    return 0;
}
